"""The bounded tenant-fair queue: admission control and round-robin
dequeue."""

import pytest

from repro.errors import ReproError, ServiceOverloadError
from repro.serve import FairQueue, Job


def _job(tenant: str) -> Job:
    return Job(matrix=None, b=None, config="cg", tenant=tenant)


class TestBoundedAdmission:
    def test_full_queue_sheds_with_a_typed_error(self):
        q = FairQueue(capacity=2)
        q.push(_job("a"))
        q.push(_job("b"))
        with pytest.raises(ServiceOverloadError) as exc_info:
            q.push(_job("c"))
        exc = exc_info.value
        assert exc.reason == "queue_full"
        assert exc.depth == 2 and exc.capacity == 2
        assert exc.exit_code == 16
        assert len(q) == 2

    def test_force_push_bypasses_the_bound(self):
        """Retries of already-admitted jobs are never dropped by their own
        re-entry."""
        q = FairQueue(capacity=1)
        q.push(_job("a"))
        q.push(_job("a"), force=True)
        assert len(q) == 2

    def test_capacity_validation(self):
        with pytest.raises(ReproError):
            FairQueue(capacity=0)


class TestFairness:
    def test_per_tenant_fifo_order(self):
        q = FairQueue(capacity=8)
        jobs = [_job("a") for _ in range(3)]
        for j in jobs:
            q.push(j)
        assert [q.pop() for _ in range(3)] == jobs

    def test_round_robin_across_tenants(self):
        """A flooding tenant cannot starve the others: dequeue rotates."""
        q = FairQueue(capacity=16)
        for _ in range(6):
            q.push(_job("flood"))
        q.push(_job("small"))
        order = [q.pop().tenant for _ in range(7)]
        assert order[:3] == ["flood", "small", "flood"]
        assert order.count("flood") == 6

    def test_rotation_follows_first_queued(self):
        q = FairQueue(capacity=8)
        for t in ("a", "b", "c", "a", "b", "c"):
            q.push(_job(t))
        assert [q.pop().tenant for _ in range(6)] == ["a", "b", "c", "a", "b", "c"]

    def test_tenants_lists_rotation(self):
        q = FairQueue(capacity=8)
        q.push(_job("x"))
        q.push(_job("y"))
        assert q.tenants() == ["x", "y"]


class TestDrainAndEmpty:
    def test_pop_on_empty_returns_none(self):
        assert FairQueue(capacity=1).pop() is None

    def test_drain_returns_everything_and_empties(self):
        q = FairQueue(capacity=8)
        jobs = [_job(t) for t in ("a", "b", "a")]
        for j in jobs:
            q.push(j)
        drained = q.drain()
        assert sorted(j.id for j in drained) == sorted(j.id for j in jobs)
        assert len(q) == 0
        assert q.pop() is None
        assert q.tenants() == []

    def test_job_ids_are_unique_and_increasing(self):
        a, b = _job("t"), _job("t")
        assert b.id > a.id
