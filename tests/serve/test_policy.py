"""The serving policies are deterministic, testable data structures:
retry schedules replay exactly, token buckets follow an injected clock,
circuit breakers walk closed -> open -> half-open -> closed."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.serve import (
    TRANSIENT_FAILURES,
    CircuitBreaker,
    RetryPolicy,
    ServicePolicy,
    TokenBucket,
)


class TestRetrySchedule:
    def test_schedule_is_a_pure_function_of_seed_and_policy(self):
        """Same (seed, policy) -> identical delays, across fresh policy
        objects; different seeds -> different jitter (satellite 3)."""
        p = RetryPolicy(max_attempts=4, base_delay=0.1, multiplier=2.0, jitter=0.5)
        assert p.schedule(42) == p.schedule(42)
        assert RetryPolicy(max_attempts=4, base_delay=0.1).schedule(42) == \
            p.schedule(42)
        assert p.schedule(42) != p.schedule(43)

    def test_schedule_exact_replay_from_seed_sequence_children(self):
        """The delays are exactly base * mult^k * (1 + jitter * u_k) with
        u_k the single draw of the k-th SeedSequence child — the same
        spawn-per-clause scheme repro.faults uses."""
        p = RetryPolicy(max_attempts=3, base_delay=0.05, multiplier=2.0, jitter=0.5)
        children = np.random.SeedSequence(7).spawn(2)
        expected = tuple(
            0.05 * 2.0**k * (1.0 + 0.5 * float(np.random.default_rng(c).random()))
            for k, c in enumerate(children)
        )
        assert p.schedule(7) == expected

    def test_schedule_length_and_bounds(self):
        p = RetryPolicy(max_attempts=5, base_delay=0.01, multiplier=3.0, jitter=0.25)
        delays = p.schedule(0)
        assert len(delays) == 4
        for k, d in enumerate(delays):
            lo = 0.01 * 3.0**k
            assert lo <= d <= lo * 1.25

    def test_no_retries_means_empty_schedule(self):
        assert RetryPolicy(max_attempts=1).schedule(5) == ()

    def test_transient_classification(self):
        p = RetryPolicy()
        for f in TRANSIENT_FAILURES:
            assert p.is_transient(f)
        assert not p.is_transient(None)
        assert not p.is_transient("some_permanent_thing")

    def test_validation(self):
        with pytest.raises(ReproError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ReproError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ReproError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ReproError):
            RetryPolicy(escalate_iterations=0.9)
        with pytest.raises(ReproError):
            RetryPolicy(fallback_after=0)


class TestEffectiveConfig:
    def test_attempt_zero_runs_the_original_config(self):
        p = RetryPolicy()
        conf = {"solver": "cg", "max_iterations": 10}
        assert p.effective_config(conf, 0) is conf

    def test_escalation_multiplies_explicit_iteration_budget(self):
        p = RetryPolicy(escalate_iterations=4.0, fallback_after=5)
        conf = {"solver": "cg", "tol": 1e-8, "max_iterations": 10}
        assert p.effective_config(conf, 1)["max_iterations"] == 40
        assert p.effective_config(conf, 2)["max_iterations"] == 160
        assert p.effective_config(conf, 1)["solver"] == "cg"

    def test_solver_default_budget_is_left_alone(self):
        """A config without an explicit max_iterations keeps the solver
        class default — the escalated config must stay a valid direct-solve
        config, and inventing a budget would change it."""
        p = RetryPolicy(fallback_after=5)
        out = p.effective_config({"solver": "cg", "tol": 1e-8}, 1)
        assert "max_iterations" not in out

    def test_fallback_config_takes_over(self):
        fallback = {"solver": "bicgstab", "tol": 1e-8}
        p = RetryPolicy(fallback_config=fallback, fallback_after=2)
        conf = {"solver": "cg", "max_iterations": 10}
        assert p.effective_config(conf, 1)["solver"] == "cg"
        assert p.effective_config(conf, 2) is fallback
        assert p.effective_config(conf, 3) is fallback


class TestTokenBucket:
    def test_burst_then_refill_on_injected_clock(self):
        b = TokenBucket(rate=2.0, burst=3.0)
        assert b.try_acquire(0.0)
        assert b.try_acquire(0.0)
        assert b.try_acquire(0.0)
        assert not b.try_acquire(0.0)  # burst exhausted
        assert not b.try_acquire(0.4)  # 0.8 tokens accrued: still short
        assert b.try_acquire(0.5)      # 1.0 accrued
        assert not b.try_acquire(0.5)

    def test_rate_zero_is_a_fixed_budget(self):
        b = TokenBucket(rate=0.0, burst=2.0)
        assert b.try_acquire(0.0) and b.try_acquire(100.0)
        assert not b.try_acquire(1e9)
        assert b.retry_after() == float("inf")

    def test_refill_caps_at_burst(self):
        b = TokenBucket(rate=10.0, burst=2.0)
        assert b.try_acquire(0.0)
        for _ in range(2):
            assert b.try_acquire(1000.0)  # long idle refills to burst, not more
        assert not b.try_acquire(1000.0)

    def test_retry_after_hint(self):
        b = TokenBucket(rate=2.0, burst=1.0)
        assert b.retry_after() == 0.0
        assert b.try_acquire(0.0)
        assert b.retry_after() == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ReproError):
            TokenBucket(rate=-1.0, burst=1.0)
        with pytest.raises(ReproError):
            TokenBucket(rate=1.0, burst=0.0)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        br = CircuitBreaker(failure_threshold=3, cooldown_seconds=10.0)
        for _ in range(2):
            br.record_failure("k", now=0.0)
        assert br.allow("k", now=0.0) and br.state("k") == "closed"
        br.record_failure("k", now=1.0)
        assert br.state("k") == "open"
        assert not br.allow("k", now=5.0)
        assert br.quarantined() == ["k"]

    def test_success_resets_the_failure_streak(self):
        br = CircuitBreaker(failure_threshold=2)
        br.record_failure("k", now=0.0)
        br.record_success("k")
        br.record_failure("k", now=0.0)
        assert br.state("k") == "closed"

    def test_half_open_probe_closes_on_success(self):
        br = CircuitBreaker(failure_threshold=1, cooldown_seconds=5.0)
        br.record_failure("k", now=0.0)
        assert not br.allow("k", now=4.9)
        assert br.allow("k", now=5.0)        # this caller is the probe
        assert br.state("k") == "half_open"
        assert not br.allow("k", now=5.0)    # only one probe at a time
        br.record_success("k")
        assert br.state("k") == "closed"
        assert br.allow("k", now=5.0)

    def test_half_open_probe_failure_reopens_with_fresh_cooldown(self):
        br = CircuitBreaker(failure_threshold=1, cooldown_seconds=5.0)
        br.record_failure("k", now=0.0)
        assert br.allow("k", now=5.0)
        br.record_failure("k", now=6.0)
        assert br.state("k") == "open"
        assert not br.allow("k", now=10.9)
        assert br.allow("k", now=11.0)

    def test_keys_are_independent(self):
        br = CircuitBreaker(failure_threshold=1)
        br.record_failure("bad", now=0.0)
        assert not br.allow("bad", now=0.0)
        assert br.allow("good", now=0.0)


class TestServicePolicy:
    def test_defaults_are_valid(self):
        p = ServicePolicy()
        assert p.max_queue_depth >= 1
        assert isinstance(p.retry, RetryPolicy)

    def test_validation(self):
        with pytest.raises(ReproError):
            ServicePolicy(max_queue_depth=0)
        with pytest.raises(ReproError):
            ServicePolicy(default_deadline=0.0)
        with pytest.raises(ReproError):
            ServicePolicy(quota_rate=-1.0)
        with pytest.raises(ReproError):
            ServicePolicy(quota_burst=0.5)
