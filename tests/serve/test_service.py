"""End-to-end behavior of the SolverService: served results are
bit-identical to direct solve() calls, and every robustness path —
deadlines, retries, quotas, circuit breaking, drain — resolves each
accepted job's future exactly once with a typed outcome."""

import asyncio

import numpy as np
import pytest

from repro.errors import (
    DivergenceError,
    JobTimeoutError,
    QuotaExceededError,
    ServiceOverloadError,
)
from repro.serve import RetryPolicy, ServicePolicy, SolverService
from repro.solvers import solve
from repro.sparse import poisson2d

CRS, DIMS = poisson2d(8)
B = np.random.default_rng(3).standard_normal(CRS.n)
#: Deliberately starved iteration budget: fails with "max_iterations".
WEAK = {"solver": "cg", "tol": 1e-8, "max_iterations": 3}
FALLBACK = {"solver": "cg", "tol": 1e-8, "max_iterations": 1000}


def run(coro):
    return asyncio.run(coro)


class TestServedBitIdentity:
    def test_roundtrip_matches_direct_solve(self):
        ref = solve(CRS, B, "cg", grid_dims=DIMS, backend="fast")

        async def go():
            async with SolverService(workers=2) as svc:
                return await svc.solve(CRS, B, "cg", grid_dims=DIMS,
                                       backend="fast", tenant="t")

        res = run(go())
        np.testing.assert_array_equal(res.result.x, ref.x)
        assert res.result.stats.residuals == ref.stats.residuals
        assert res.attempts == 1
        assert res.effective_config == "cg"
        assert res.queue_seconds >= 0 and res.exec_seconds > 0
        assert res.total_seconds >= res.exec_seconds

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_fault_injected_job_rides_the_rollback_path(self):
        """A fault-injection tenant's served result equals the direct
        resilient solve bit for bit — recovery happens inside the solve
        (checkpoint/rollback), not in the serving retry ladder."""
        from repro.sparse import poisson3d

        crs, dims = poisson3d(8)
        b = np.random.default_rng(3).standard_normal(crs.n)
        conf = {"solver": "cg", "tol": 1e-6}
        spec = "seed=7;bitflip:p=0.03,where=exchange"
        kw = dict(grid_dims=dims, num_ipus=2, tiles_per_ipu=16,
                  inject_faults=spec, resilience=True)
        ref = solve(crs, b, conf, **kw)
        assert ref.resilience.outcome == "recovered"
        assert ref.resilience.rollbacks > 0

        async def go():
            async with SolverService(workers=1) as svc:
                res = await svc.solve(crs, b, conf, tenant="faulty", **kw)
                return res, dict(svc.counts)

        res, counts = run(go())
        np.testing.assert_array_equal(res.result.x, ref.x)
        assert res.result.stats.residuals == ref.stats.residuals
        assert res.result.resilience.to_dict() == ref.resilience.to_dict()
        assert res.attempts == 1          # rollback absorbed the faults
        assert counts["retries"] == 0


class TestRetries:
    def test_retry_ladder_reaches_fallback_and_stays_reproducible(self):
        retry = RetryPolicy(max_attempts=3, base_delay=0.001,
                            fallback_config=FALLBACK, fallback_after=2)

        async def go():
            pol = ServicePolicy(retry=retry)
            async with SolverService(policy=pol, workers=1) as svc:
                res = await svc.solve(CRS, B, WEAK, grid_dims=DIMS,
                                      backend="fast", seed=7)
                return res, dict(svc.counts)

        res, counts = run(go())
        assert res.attempts == 3
        assert res.effective_config is FALLBACK
        assert counts["retries"] == 2 and counts["ok"] == 1
        # The bit-identity contract: one direct call with the recorded
        # effective config reproduces the served result exactly.
        ref = solve(CRS, B, res.effective_config, grid_dims=DIMS, backend="fast")
        np.testing.assert_array_equal(res.result.x, ref.x)
        assert res.result.stats.residuals == ref.stats.residuals

    def test_escalation_multiplies_the_iteration_budget(self):
        retry = RetryPolicy(max_attempts=2, base_delay=0.001,
                            escalate_iterations=400.0, fallback_after=5)

        async def go():
            pol = ServicePolicy(retry=retry)
            async with SolverService(policy=pol, workers=1) as svc:
                return await svc.solve(CRS, B, WEAK, grid_dims=DIMS,
                                       backend="fast")

        res = run(go())
        assert res.attempts == 2
        assert res.effective_config["max_iterations"] == 1200
        assert res.result.stats.failure is None

    def test_exhausted_retries_fail_with_the_typed_error(self):
        retry = RetryPolicy(max_attempts=2, base_delay=0.001, fallback_after=5,
                            escalate_iterations=1.0)

        async def go():
            pol = ServicePolicy(retry=retry)
            async with SolverService(policy=pol, workers=1) as svc:
                with pytest.raises(DivergenceError) as exc_info:
                    await svc.solve(CRS, B, WEAK, grid_dims=DIMS, backend="fast")
                return exc_info.value, dict(svc.counts)

        exc, counts = run(go())
        assert exc.reason == "max_iterations"
        assert exc.exit_code == 13
        assert exc.last_result.stats.failure == "max_iterations"
        assert counts["failed"] == 1 and counts["retries"] == 1


class TestDeadlines:
    def test_expired_deadline_times_out_before_dispatch(self):
        async def go():
            async with SolverService(workers=1) as svc:
                with pytest.raises(JobTimeoutError) as exc_info:
                    await svc.solve(CRS, B, "cg", grid_dims=DIMS,
                                    backend="fast", deadline=1e-9)
                return exc_info.value, dict(svc.counts)

        exc, counts = run(go())
        assert exc.exit_code == 17
        assert counts["timed_out"] == 1 and counts["ok"] == 0

    def test_backoff_that_would_overrun_the_deadline_times_out(self):
        """A failed attempt whose retry delay exceeds the remaining budget
        reports a timeout carrying the failed attempt's partial stats."""
        retry = RetryPolicy(max_attempts=3, base_delay=60.0, jitter=0.0)

        async def go():
            pol = ServicePolicy(retry=retry)
            async with SolverService(policy=pol, workers=1) as svc:
                with pytest.raises(JobTimeoutError) as exc_info:
                    await svc.solve(CRS, B, WEAK, grid_dims=DIMS,
                                    backend="fast", deadline=30.0)
                return exc_info.value

        exc = run(go())
        assert exc.stats is not None
        assert exc.stats.failure == "max_iterations"

    def test_nonpositive_deadline_is_rejected(self):
        async def go():
            async with SolverService(workers=1) as svc:
                with pytest.raises(Exception, match="deadline"):
                    svc.submit(CRS, B, "cg", grid_dims=DIMS, deadline=0.0)

        run(go())


class TestAdmissionControl:
    def test_full_queue_sheds_with_typed_rejection(self):
        async def go():
            pol = ServicePolicy(max_queue_depth=2)
            async with SolverService(policy=pol, workers=1) as svc:
                jobs, rejected = [], 0
                # Submits are synchronous, so the bound is hit before any
                # worker can drain: everything past the capacity sheds.
                for _ in range(8):
                    try:
                        jobs.append(svc.submit(CRS, B, "cg", grid_dims=DIMS,
                                               backend="fast"))
                    except ServiceOverloadError as exc:
                        assert exc.reason == "queue_full"
                        assert exc.capacity == 2
                        rejected += 1
                await asyncio.gather(*(j.future for j in jobs))
                return jobs, rejected, svc.accounting()

        jobs, rejected, acc = run(go())
        assert len(jobs) == 2 and rejected == 6
        assert all(j.future.exception() is None for j in jobs)
        assert acc["rejections"]["queue_full"] == 6
        assert acc["balanced"]

    def test_quota_exhaustion_rejects_with_retry_hint(self):
        async def go():
            pol = ServicePolicy(quota_rate=0.0, quota_burst=1.0)
            async with SolverService(policy=pol, workers=1) as svc:
                job = svc.submit(CRS, B, "cg", grid_dims=DIMS, backend="fast",
                                 tenant="a")
                with pytest.raises(QuotaExceededError) as exc_info:
                    svc.submit(CRS, B, "cg", grid_dims=DIMS, backend="fast",
                               tenant="a")
                # Quotas are per tenant: another tenant still gets in.
                other = svc.submit(CRS, B, "cg", grid_dims=DIMS, backend="fast",
                                   tenant="b")
                await asyncio.gather(job.future, other.future)
                return exc_info.value

        exc = run(go())
        assert exc.exit_code == 18
        assert exc.tenant == "a"
        assert exc.retry_after == float("inf")

    def test_circuit_breaker_quarantines_a_failing_structure(self):
        retry = RetryPolicy(max_attempts=1)

        async def go():
            pol = ServicePolicy(retry=retry, breaker_threshold=2,
                                breaker_cooldown=600.0)
            async with SolverService(policy=pol, workers=1) as svc:
                for _ in range(2):
                    with pytest.raises(DivergenceError):
                        await svc.solve(CRS, B, WEAK, grid_dims=DIMS,
                                        backend="fast")
                with pytest.raises(ServiceOverloadError) as exc_info:
                    svc.submit(CRS, B, WEAK, grid_dims=DIMS, backend="fast")
                # Other structures are unaffected by the quarantine.
                healthy = await svc.solve(CRS, B, "cg", grid_dims=DIMS,
                                          backend="fast")
                return exc_info.value, healthy, svc.breaker.quarantined()

        exc, healthy, quarantined = run(go())
        assert exc.reason == "circuit_open"
        assert healthy.result.stats.failure is None
        assert len(quarantined) == 1


class TestLifecycle:
    def test_graceful_drain_finishes_the_backlog(self):
        async def go():
            pol = ServicePolicy(max_queue_depth=8)
            svc = SolverService(policy=pol, workers=2)
            await svc.start()
            jobs = [svc.submit(CRS, B, "cg", grid_dims=DIMS, backend="fast")
                    for _ in range(5)]
            await svc.stop(drain=True)
            return jobs, svc.accounting()

        jobs, acc = run(go())
        assert all(j.future.done() for j in jobs)
        assert all(j.future.exception() is None for j in jobs)
        assert acc["ok"] == 5 and acc["balanced"]

    def test_non_drain_stop_sheds_the_queue_but_resolves_every_future(self):
        async def go():
            pol = ServicePolicy(max_queue_depth=8)
            svc = SolverService(policy=pol, workers=1)
            await svc.start()
            jobs = [svc.submit(CRS, B, "cg", grid_dims=DIMS, backend="fast")
                    for _ in range(4)]
            await svc.stop(drain=False)
            return jobs, svc.accounting()

        jobs, acc = run(go())
        assert all(j.future.done() for j in jobs)
        shed = [j for j in jobs
                if isinstance(j.future.exception(), ServiceOverloadError)]
        assert all(j.future.exception().reason == "shutting_down" for j in shed)
        assert acc["cancelled"] == len(shed) >= 1
        assert acc["balanced"]

    def test_submissions_after_stop_are_rejected(self):
        async def go():
            svc = SolverService(workers=1)
            await svc.start()
            await svc.stop()
            with pytest.raises(ServiceOverloadError) as exc_info:
                svc.submit(CRS, B, "cg", grid_dims=DIMS, backend="fast")
            return exc_info.value

        assert run(go()).reason == "shutting_down"

    def test_repr_tracks_state(self):
        async def go():
            svc = SolverService(workers=1)
            assert "stopped" in repr(svc)
            await svc.start()
            assert "running" in repr(svc)
            await svc.stop()

        run(go())


class TestObservability:
    def test_service_metrics_are_registered(self):
        from repro.telemetry import MetricsRegistry

        async def go():
            mreg = MetricsRegistry()
            pol = ServicePolicy(max_queue_depth=4, quota_rate=0.0, quota_burst=2.0)
            async with SolverService(policy=pol, workers=1, metrics=mreg) as svc:
                jobs = [svc.submit(CRS, B, "cg", grid_dims=DIMS, backend="fast",
                                   tenant="a") for _ in range(2)]
                with pytest.raises(QuotaExceededError):
                    svc.submit(CRS, B, "cg", grid_dims=DIMS, backend="fast",
                               tenant="a")
                await asyncio.gather(*(j.future for j in jobs))
            return mreg.to_json()

        snap = run(go())
        assert "repro_serve_jobs_total" in snap
        assert "repro_serve_rejections_total" in snap
        assert "repro_serve_queue_depth" in snap
        assert "repro_serve_job_seconds" in snap
