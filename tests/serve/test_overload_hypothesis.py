"""Property test: under ANY mix of accepted / rejected / timed-out /
retried jobs, the service neither loses nor duplicates a job, and every
job it serves is bit-identical to a direct solve() call.

Hypothesis drives the job mix — tenants, deadlines, weak configs that
force the retry ladder, tight queue bounds, quotas, and queue-level
dynamic batching (off / greedy / windowed) — and the invariants are
checked after a full drain:

1. exactly one outcome record per submitted spec (nothing lost),
2. the service's own ledger balances (nothing duplicated),
3. every outcome is one of the typed classes (no raw crashes escape),
4. every served result is reproduced exactly by one direct
   ``solve(matrix, b, effective_config)`` call.
"""

import asyncio

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import (
    BatchPolicy,
    LoadGenerator,
    RetryPolicy,
    ServicePolicy,
    SolverService,
)
from repro.solvers import solve
from repro.sparse import poisson2d

CRS, DIMS = poisson2d(6)
B = np.random.default_rng(5).standard_normal(CRS.n)
GOOD = {"solver": "cg", "tol": 1e-8, "max_iterations": 200}
#: Starved budget: fails transiently, engages the retry ladder.
WEAK = {"solver": "cg", "tol": 1e-8, "max_iterations": 2}

KNOWN_OUTCOMES = frozenset({
    "ok", "failed", "timed_out",
    "rejected:queue_full", "rejected:quota",
    "rejected:circuit_open", "rejected:shutting_down",
})

job_spec = st.fixed_dictionaries({
    "tenant": st.sampled_from(["a", "b", "c"]),
    "weak": st.booleans(),
    "seed": st.integers(min_value=0, max_value=2**16),
    # None = no deadline; tiny = expires in the queue -> timed_out.
    "deadline": st.sampled_from([None, None, 1e-9, 30.0]),
})


#: (max_batch, assembly window ms); None = queue-level batching off.
#: Batched interleavings — coalesced dispatches, deadline collateral
#: redispatch, per-column retries — must uphold the same four invariants.
batch_policy = st.sampled_from([None, (2, 0.0), (4, 2.0)])


@given(
    specs=st.lists(job_spec, min_size=1, max_size=12),
    queue_depth=st.integers(min_value=1, max_value=4),
    quota_burst=st.integers(min_value=1, max_value=8),
    batching=batch_policy,
)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_no_job_is_lost_or_duplicated_and_served_means_bit_identical(
        specs, queue_depth, quota_burst, batching):
    retry = RetryPolicy(max_attempts=2, base_delay=0.001,
                        escalate_iterations=200.0, fallback_after=5)
    batch = (BatchPolicy(max_batch=batching[0], max_wait_ms=batching[1])
             if batching is not None else None)
    policy = ServicePolicy(max_queue_depth=queue_depth, retry=retry,
                           quota_rate=0.0, quota_burst=float(quota_burst),
                           batch=batch)

    full_specs = [
        {
            "matrix": CRS, "b": B, "config": WEAK if s["weak"] else GOOD,
            "tenant": s["tenant"], "seed": s["seed"],
            "deadline": s["deadline"], "grid_dims": DIMS, "backend": "fast",
        }
        for s in specs
    ]

    async def go():
        service = SolverService(policy=policy, workers=2)
        async with service:
            report = await LoadGenerator(service).run(full_specs)
        return report, service.accounting()

    report, acc = asyncio.run(go())

    # 1. Nothing lost: one record per submitted spec.
    assert report.total == len(full_specs)
    # 2. Nothing duplicated: the service ledger balances exactly.
    assert acc["balanced"], acc
    assert acc["submitted"] == len(full_specs)
    assert acc["queued"] == 0 and acc["in_flight"] == 0  # fully drained
    assert acc["worker_faults"] == 0
    # 3. Every outcome is typed.
    assert {r["outcome"] for r in report.records} <= KNOWN_OUTCOMES
    served = report.served
    assert len(served) == acc["ok"]
    # 4. Serving is observational: each served job is reproduced exactly
    #    by one direct solve with the recorded effective config.
    for rec in served:
        res = rec["result"]
        spec = rec["spec"]
        ref = solve(spec["matrix"], spec["b"], res.effective_config,
                    grid_dims=spec["grid_dims"], backend=spec["backend"])
        np.testing.assert_array_equal(res.result.x, ref.x)
        assert res.result.stats.residuals == ref.stats.residuals
        assert res.result.cycles == ref.cycles
