"""Queue-level dynamic batching: coalescing is invisible in results.

Every batched-served job must be bit-identical to one direct
:func:`repro.solvers.solve` of its column alone, and per-job semantics —
deadlines, retries, fairness, opt-out, admission validation — survive
coalescing unchanged (docs/serving.md, "Dynamic batching").
"""

import asyncio

import numpy as np
import pytest

from repro.errors import JobTimeoutError, ReproError
from repro.serve import (BatchPolicy, RetryPolicy, ServicePolicy,
                         SolverService, config_supports_batch)
from repro.solvers import solve
from repro.sparse import poisson2d

CRS, DIMS = poisson2d(8)
RNG = np.random.default_rng(17)
CONFIG = {"solver": "cg", "tol": 1e-8, "max_iterations": 400}
#: Starved budget: fails with "max_iterations", engaging the retry ladder.
WEAK = {"solver": "cg", "tol": 1e-8, "max_iterations": 3}
KW = dict(grid_dims=DIMS, backend="fast")


def run(coro):
    return asyncio.run(coro)


def _bs(k, seed=17):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(CRS.n) for _ in range(k)]


def _policy(max_batch=4, max_wait_ms=20.0, **kw):
    return ServicePolicy(
        batch=BatchPolicy(max_batch=max_batch, max_wait_ms=max_wait_ms), **kw)


class TestCoalescing:
    def test_compatible_jobs_coalesce_and_match_direct_solve(self):
        """K jobs submitted before the single worker wakes form one
        width-K dispatch, and every column equals its solo solve."""
        bs = _bs(4)
        refs = [solve(CRS, b, CONFIG, **KW) for b in bs]

        async def go():
            async with SolverService(policy=_policy(), workers=1) as svc:
                jobs = [svc.submit(CRS, b, CONFIG, tenant="t", **KW)
                        for b in bs]
                results = await asyncio.gather(*(j.future for j in jobs))
                return results, svc.accounting()

        results, acc = run(go())
        assert acc["balanced"] and acc["worker_faults"] == 0
        assert acc["batches"] == 1 and acc["coalesced"] == 3
        for res, ref in zip(results, refs):
            assert res.batch_size == 4
            assert res.result.failure is None
            np.testing.assert_array_equal(res.result.x, ref.x)
            assert res.result.stats.residuals == ref.stats.residuals
            assert res.result.relative_residual == ref.relative_residual

    def test_lone_job_rides_the_classic_single_rhs_path(self):
        """A batch of one is not a batch: the dispatch falls back to the
        single-RHS program, bit-identical cycles included."""
        b = _bs(1)[0]
        ref = solve(CRS, b, CONFIG, **KW)

        async def go():
            async with SolverService(policy=_policy(), workers=1) as svc:
                return await svc.solve(CRS, b, CONFIG, **KW), svc.accounting()

        res, acc = run(go())
        assert res.batch_size == 1
        assert acc["batches"] == 0 and acc["coalesced"] == 0
        np.testing.assert_array_equal(res.result.x, ref.x)
        assert res.result.stats.residuals == ref.stats.residuals
        assert res.result.cycles == ref.cycles

    def test_opt_out_jobs_never_share_a_dispatch(self):
        bs = _bs(3)

        async def go():
            async with SolverService(policy=_policy(), workers=1) as svc:
                jobs = [svc.submit(CRS, b, CONFIG, tenant="t",
                                   batchable=False, **KW) for b in bs]
                results = await asyncio.gather(*(j.future for j in jobs))
                return results, svc.accounting()

        results, acc = run(go())
        assert acc["batches"] == 0 and acc["coalesced"] == 0
        assert all(r.batch_size == 1 for r in results)
        assert all(r.result.failure is None for r in results)

    def test_batch_eligibility_is_config_aware(self):
        assert config_supports_batch("cg")
        assert config_supports_batch({"solver": "bicgstab",
                                      "preconditioner": {"solver": "jacobi"}})
        assert not config_supports_batch({"solver": "mpir",
                                          "inner": {"solver": "cg"}})
        assert not config_supports_batch(
            {"solver": "cg", "preconditioner": {"solver": "ilu0"}})
        assert not config_supports_batch("not a solver at all")


class TestDeadlinesInBatches:
    def test_one_column_times_out_the_rest_converge_bit_identically(self):
        """The earliest deadline bounds the whole dispatch, but only the
        expired job times out — collateral columns go back to the queue
        (no retry attempt consumed) and finish exactly."""
        bs = _bs(3, seed=5)
        refs = [solve(CRS, b, CONFIG, **KW) for b in bs[1:]]

        async def go():
            async with SolverService(policy=_policy(max_wait_ms=5.0),
                                     workers=1) as svc:
                doomed = svc.submit(CRS, bs[0], CONFIG, tenant="t",
                                    deadline=0.15, **KW)
                rest = [svc.submit(CRS, b, CONFIG, tenant="t", **KW)
                        for b in bs[1:]]
                outcome = await asyncio.gather(doomed.future,
                                               return_exceptions=True)
                results = await asyncio.gather(*(j.future for j in rest))
                return outcome[0], results, svc.accounting()

        err, results, acc = run(go())
        assert isinstance(err, JobTimeoutError) and err.exit_code == 17
        assert acc["balanced"] and acc["timed_out"] == 1 and acc["ok"] == 2
        # The survivors were redispatched, not retried: one attempt each.
        assert acc["redispatched"] == 2 and acc["retries"] == 0
        for res, ref in zip(results, refs):
            assert res.attempts == 1
            np.testing.assert_array_equal(res.result.x, ref.x)
            assert res.result.stats.residuals == ref.stats.residuals


class TestRetriesInBatches:
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_failed_columns_retry_individually_and_stay_exact(self):
        """A starved batch fails every column; each re-enters the retry
        ladder on its own and the escalated result is reproduced by one
        direct solve with the recorded effective config."""
        bs = _bs(3, seed=9)
        retry = RetryPolicy(max_attempts=2, base_delay=0.001,
                            escalate_iterations=200.0, fallback_after=5)

        async def go():
            async with SolverService(policy=_policy(retry=retry),
                                     workers=1) as svc:
                jobs = [svc.submit(CRS, b, WEAK, tenant="t", **KW)
                        for b in bs]
                results = await asyncio.gather(*(j.future for j in jobs))
                return results, svc.accounting()

        results, acc = run(go())
        assert acc["balanced"] and acc["retries"] == 3
        assert acc["batches"] >= 1
        for res, b in zip(results, bs):
            assert res.attempts == 2
            assert res.result.failure is None
            assert res.effective_config != WEAK
            ref = solve(CRS, b, res.effective_config, **KW)
            np.testing.assert_array_equal(res.result.x, ref.x)
            assert res.result.stats.residuals == ref.stats.residuals


class TestFairness:
    def test_batching_cannot_starve_an_incompatible_tenant(self):
        """One worker, a deep lane of batchable jobs from tenant A, one
        never-batchable job from tenant B: round-robin still serves B
        after A's first dispatch, not after A's whole backlog."""
        bs = _bs(12, seed=3)
        order: list = []

        async def go():
            policy = _policy(max_batch=4, max_wait_ms=5.0,
                             max_queue_depth=16)
            async with SolverService(policy=policy, workers=1) as svc:
                a_jobs = [svc.submit(CRS, b, CONFIG, tenant="A", **KW)
                          for b in bs]
                b_job = svc.submit(CRS, _bs(1, seed=4)[0], CONFIG,
                                   tenant="B", batchable=False, **KW)
                for j in [*a_jobs, b_job]:
                    j.future.add_done_callback(
                        lambda _, t=j.tenant: order.append(t))
                await asyncio.gather(*(j.future for j in [*a_jobs, b_job]))
                return svc.accounting()

        acc = run(go())
        assert acc["balanced"] and acc["ok"] == 13
        # B finished right after A's first width-4 dispatch — well before
        # A's 12-job backlog drained.
        assert order.index("B") <= 4, order


class TestAdmissionValidation:
    """Malformed jobs are rejected synchronously at submit with a typed
    error and an ``invalid_argument`` ledger entry — they never reach a
    worker (or burn a quota token)."""

    def _submit(self, svc, b, **kw):
        return svc.submit(CRS, b, CONFIG, grid_dims=DIMS, backend="fast",
                          **kw)

    def test_malformed_inputs_are_typed_rejections(self):
        good = _bs(1)[0]

        async def go():
            async with SolverService(workers=1) as svc:
                cases = [
                    (dict(b=np.zeros((2, 2, CRS.n))), "1-D .* or batched"),
                    (dict(b=good[:-1]), "entries per right-hand side"),
                    (dict(b=np.empty((0, CRS.n))), "at least one"),
                    (dict(b=np.array(["x"] * CRS.n, dtype=object)),
                     "real-numeric"),
                    (dict(b=np.full(CRS.n, np.nan)), "non-finite"),
                    (dict(b=good, x0=good[:-1]), "x0 shape"),
                    (dict(b=good, deadline=-1.0), "deadline"),
                ]
                for kw, needle in cases:
                    with pytest.raises(ReproError, match=needle):
                        self._submit(svc, **kw)
                ok = await self._submit(svc, good).future
                return ok, svc.accounting(), len(cases)

        ok, acc, n = run(go())
        assert ok.result.failure is None
        assert acc["balanced"], acc
        assert acc["rejected"] == n
        assert acc["rejections"].get("invalid_argument") == n

    def test_integer_rhs_is_admitted(self):
        """Integer b is valid (solve() widens it) — validation rejects
        only non-numeric or non-finite payloads."""

        async def go():
            async with SolverService(workers=1) as svc:
                res = await self._submit(
                    svc, np.ones(CRS.n, dtype=np.int32)).future
                return res

        assert run(go()).result.failure is None
