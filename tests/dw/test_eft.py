"""Error-free transform unit and property tests.

The defining property of an EFT is *exactness*: the returned (result, error)
pair reconstructs the true real-number result.  For float32 operands we can
check this exactly in float64 (a f32 product fits in 48 bits; a f32 sum's
value and error are both f32, so their f64 sum is exact).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dw.eft import fast_two_sum, fma, split, two_prod, two_sum

finite_f32 = st.floats(
    min_value=-2.0**100, max_value=2.0**100, allow_nan=False, allow_infinity=False, allow_subnormal=False, width=32
)

# EFT exactness theorems assume the exact result neither under- nor overflows;
# keep operand magnitudes in [2^-30, 2^30] (or exactly zero) so products stay
# in the normal float32 range.
moderate_f32 = st.one_of(
    st.just(0.0),
    st.floats(
        min_value=2.0**-30,
        max_value=2.0**30,
        allow_nan=False,
        allow_subnormal=False,
        width=32,
    ).flatmap(lambda x: st.sampled_from([x, -x])),
)


def as_f32(x):
    return np.float32(x)


class TestTwoSum:
    def test_exact_decomposition_simple(self):
        s, e = two_sum(as_f32(1.0), as_f32(1e-8))
        assert float(s) == 1.0  # 1e-8 vanishes in f32
        assert float(e) == pytest.approx(1e-8, rel=1e-6)

    def test_zero(self):
        s, e = two_sum(as_f32(0.0), as_f32(0.0))
        assert s == 0.0 and e == 0.0

    @given(finite_f32, finite_f32)
    @settings(max_examples=300)
    def test_exactness_property(self, a, b):
        a, b = as_f32(a), as_f32(b)
        s, e = two_sum(a, b)
        if np.isfinite(s):
            assert np.float64(s) + np.float64(e) == np.float64(a) + np.float64(b)

    @given(finite_f32, finite_f32)
    @settings(max_examples=200)
    def test_s_is_rounded_sum(self, a, b):
        a, b = as_f32(a), as_f32(b)
        s, _ = two_sum(a, b)
        assert s == a + b

    def test_vectorized(self):
        a = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        b = np.array([1e-8, -1e-8, 0.5e-7], dtype=np.float32)
        s, e = two_sum(a, b)
        np.testing.assert_array_equal(
            s.astype(np.float64) + e.astype(np.float64),
            a.astype(np.float64) + b.astype(np.float64),
        )


class TestFastTwoSum:
    @given(finite_f32, finite_f32)
    @settings(max_examples=300)
    def test_exact_when_ordered(self, a, b):
        a, b = as_f32(a), as_f32(b)
        if abs(a) < abs(b):
            a, b = b, a
        s, e = fast_two_sum(a, b)
        if np.isfinite(s):
            assert np.float64(s) + np.float64(e) == np.float64(a) + np.float64(b)


class TestTwoProd:
    def test_simple(self):
        # (1 + 2^-12)^2 = 1 + 2^-11 + 2^-24: the last bit is the f32 rounding error.
        a = as_f32(1.0 + 2.0**-12)
        p, e = two_prod(a, a)
        assert np.float64(p) + np.float64(e) == np.float64(a) * np.float64(a)
        assert e != 0.0

    @given(moderate_f32, moderate_f32)
    @settings(max_examples=300)
    def test_exactness_property(self, a, b):
        a, b = as_f32(a), as_f32(b)
        p, e = two_prod(a, b)
        assert np.float64(p) + np.float64(e) == np.float64(a) * np.float64(b)

    def test_float64_dekker_path(self):
        a = np.float64(1.0 + 2.0**-30)
        p, e = two_prod(a, a)
        # Dekker decomposition is exact for float64 too (checked structurally:
        # |e| <= ulp(p)/2 and p == fl(a*a)).
        assert p == a * a
        assert abs(e) <= np.spacing(p) / 2

    def test_vectorized(self):
        a = np.linspace(0.1, 5.0, 64, dtype=np.float32)
        b = np.linspace(-3.0, 3.0, 64, dtype=np.float32)
        p, e = two_prod(a, b)
        np.testing.assert_array_equal(
            p.astype(np.float64) + e.astype(np.float64),
            a.astype(np.float64) * b.astype(np.float64),
        )


class TestSplit:
    @given(st.floats(min_value=-2.0**49, max_value=2.0**49, allow_nan=False, allow_subnormal=False, width=32))
    @settings(max_examples=200)
    def test_split_reconstructs(self, a):
        a = as_f32(a)
        hi, lo = split(a)
        assert hi + lo == a


class TestFMA:
    def test_single_rounding(self):
        # a*b underflows against c in a two-rounding evaluation but survives an FMA.
        a = as_f32(1.0 + 2.0**-12)
        c = as_f32(-1.0)
        naive = a * a + c
        fused = fma(a, a, c)
        exact = np.float64(a) * np.float64(a) + np.float64(c)
        assert abs(np.float64(fused) - exact) <= abs(np.float64(naive) - exact)
        assert fused == np.float32(exact)

    @given(moderate_f32, moderate_f32, moderate_f32)
    @settings(max_examples=300)
    def test_correctly_rounded(self, a, b, c):
        a, b, c = as_f32(a), as_f32(b), as_f32(c)
        out = fma(a, b, c)
        # f64 holds a*b exactly; one more f64 add then a single rounding to
        # f32 matches the hardware FMA except in measure-zero double-rounding
        # corners outside the moderate operand range used here.
        exact = np.float64(a) * np.float64(b) + np.float64(c)
        assert out == np.float32(exact)

    def test_scalar_in_scalar_out(self):
        out = fma(as_f32(2.0), as_f32(3.0), as_f32(4.0))
        assert np.ndim(out) == 0
        assert out == as_f32(10.0)

    def test_array_shape(self):
        a = np.ones(5, dtype=np.float32)
        out = fma(a, a, a)
        assert out.shape == (5,)
        assert out.dtype == np.float32

    def test_rejects_nothing_float64(self):
        out = fma(np.float64(2.0), np.float64(3.0), np.float64(1.0))
        assert out == 7.0


def test_unsupported_dtype_rejected():
    with pytest.raises(TypeError):
        two_prod(np.float16(1.0), np.float16(2.0))
