"""Property tests for the Joldes (accurate) and Lange-Rump (fast) dw kernels.

A dw operation on float32 pairs should agree with the float64 reference to
roughly 2^-48 relative error (accurate family) — far beyond float32's 2^-24.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dw import joldes, lange_rump

# Operands that exercise several magnitudes without overflowing intermediates.
operand = st.floats(min_value=1e-8, max_value=1e8, allow_nan=False, allow_subnormal=False, width=64)
signed = st.one_of(operand, operand.map(lambda x: -x))

U32 = 2.0**-24
ACCURATE_BOUND = 16 * U32 * U32  # a few u², with slack
SLOPPY_BOUND = 256 * U32 * U32


def dw_of(x):
    hi = np.float32(x)
    lo = np.float32(np.float64(x) - np.float64(hi))
    return hi, lo


def value(pair):
    return np.float64(pair[0]) + np.float64(pair[1])


def relerr(approx, exact):
    if exact == 0:
        return abs(approx)
    return abs((approx - exact) / exact)


def scaled_err(approx, exact, *operands):
    """Error relative to the largest operand — the right yardstick for
    addition, where cancellation makes result-relative error unbounded."""
    scale = max(abs(np.float64(o)) for o in operands)
    return abs(approx - exact) / scale if scale else abs(approx - exact)


@pytest.mark.parametrize("arith,bound", [(joldes, ACCURATE_BOUND), (lange_rump, SLOPPY_BOUND)])
class TestKernelsAgainstFloat64:
    @given(x=signed, y=signed)
    @settings(max_examples=250)
    def test_mul(self, arith, bound, x, y):
        got = value(arith.mul_dw_dw(*dw_of(x), *dw_of(y)))
        assert relerr(got, np.float64(x) * np.float64(y)) < bound

    @given(x=signed, y=signed)
    @settings(max_examples=250)
    def test_div(self, arith, bound, x, y):
        got = value(arith.div_dw_dw(*dw_of(x), *dw_of(y)))
        assert relerr(got, np.float64(x) / np.float64(y)) < bound

    @given(x=operand, y=operand)
    @settings(max_examples=250)
    def test_add_same_sign(self, arith, bound, x, y):
        # Same-sign addition cannot cancel; both families must be accurate.
        got = value(arith.add_dw_dw(*dw_of(x), *dw_of(y)))
        assert relerr(got, np.float64(x) + np.float64(y)) < bound

    @given(x=signed, y=operand)
    @settings(max_examples=250)
    def test_add_fp(self, arith, bound, x, y):
        got = value(arith.add_dw_fp(*dw_of(x), np.float32(y)))
        exact = np.float64(x) + np.float64(np.float32(y))
        assert scaled_err(got, exact, x, y) < bound

    @given(x=signed, y=operand)
    @settings(max_examples=250)
    def test_mul_fp(self, arith, bound, x, y):
        got = value(arith.mul_dw_fp(*dw_of(x), np.float32(y)))
        exact = np.float64(x) * np.float64(np.float32(y))
        assert relerr(got, exact) < bound

    @given(x=signed, y=operand)
    @settings(max_examples=250)
    def test_div_fp(self, arith, bound, x, y):
        got = value(arith.div_dw_fp(*dw_of(x), np.float32(y)))
        exact = np.float64(x) / np.float64(np.float32(y))
        assert relerr(got, exact) < bound

    @given(x=signed)
    @settings(max_examples=100)
    def test_neg_exact(self, arith, bound, x):
        assert value(arith.neg(*dw_of(x))) == -value(dw_of(x))


class TestAccurateVsSloppyCancellation:
    def test_accurate_handles_cancellation(self):
        # x - y with x ≈ y: the accurate family must keep the tiny difference.
        x = 1.0 + 3e-12
        y = 1.0
        got = value(joldes.sub_dw_dw(*dw_of(x), *dw_of(y)))
        assert got == pytest.approx(3e-12, rel=1e-3)

    def test_joldes_normalized_output(self):
        # Output pairs must satisfy |lo| <= ulp(hi)/2 (normalization).
        rng = np.random.default_rng(7)
        for _ in range(200):
            x, y = rng.uniform(-100, 100, 2)
            h, l = joldes.add_dw_dw(*dw_of(x), *dw_of(y))
            if h != 0:
                assert abs(float(l)) <= np.spacing(np.float32(abs(h))) / 2 + 1e-30

    def test_sloppy_is_cheaper(self):
        for op in ("add", "mul", "div"):
            assert lange_rump.FLOPS[op] < joldes.FLOPS[op]
            assert lange_rump.CYCLES[op] < joldes.CYCLES[op]

    def test_chained_sum_joldes_beats_sloppy(self):
        # Alternating-sign series stresses cancellation; accumulate 10k terms.
        rng = np.random.default_rng(3)
        terms = rng.uniform(-1, 1, 10_000)
        exact = np.sum(terms.astype(np.float64))

        def accumulate(arith):
            acc = dw_of(0.0)
            for t in terms:
                acc = arith.add_dw_dw(*acc, *dw_of(t))
            return value(acc)

        err_j = abs(accumulate(joldes) - exact)
        err_lr = abs(accumulate(lange_rump) - exact)
        assert err_j <= err_lr + 1e-13
        assert err_j < 1e-9  # far below f32's ~1e-3 for this sum


class TestVectorized:
    def test_array_kernels_match_scalar(self):
        rng = np.random.default_rng(11)
        xs = rng.uniform(-10, 10, 64)
        ys = rng.uniform(0.5, 10, 64)
        xh = xs.astype(np.float32)
        xl = (xs - xh.astype(np.float64)).astype(np.float32)
        yh = ys.astype(np.float32)
        yl = (ys - yh.astype(np.float64)).astype(np.float32)
        for op in (joldes.add_dw_dw, joldes.mul_dw_dw, joldes.div_dw_dw):
            h, l = op(xh, xl, yh, yl)
            for i in range(64):
                hs, ls = op(xh[i], xl[i], yh[i], yl[i])
                assert h[i] == hs and l[i] == ls


def test_table1_cycle_constants():
    """Joldes cycle counts must match Table I of the paper exactly."""
    assert joldes.CYCLES == {"add": 132, "mul": 162, "div": 240}
