"""Tests for the DWScalar / DWArray containers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dw import DWArray, DWScalar, lange_rump

val = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_subnormal=False, width=64)
nonzero = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False, allow_subnormal=False, width=64)


class TestDWScalar:
    def test_roundtrip_precision(self):
        x = DWScalar.from_float(np.pi)
        # Splitting f64 -> (f32, f32) keeps ~48 bits: error < 2^-48 * pi.
        assert abs(x.to_float() - np.pi) < 2**-46

    @given(val, val)
    @settings(max_examples=200)
    def test_add_matches_f64(self, a, b):
        got = (DWScalar.from_float(a) + DWScalar.from_float(b)).to_float()
        # The (f32, f32) split only represents each input to ~|x| * 2^-49;
        # cancellation exposes that representation error in the sum, so it
        # is allowed absolutely on top of the algorithm's relative bound.
        assert got == pytest.approx(
            np.float64(a) + np.float64(b),
            rel=2**-40,
            abs=(abs(a) + abs(b)) * 2**-48 + 1e-20,
        )

    @given(val, nonzero)
    @settings(max_examples=200)
    def test_div_matches_f64(self, a, b):
        got = (DWScalar.from_float(a) / DWScalar.from_float(b)).to_float()
        assert got == pytest.approx(np.float64(a) / np.float64(b), rel=2**-40)

    def test_mixed_python_float(self):
        x = DWScalar.from_float(2.0)
        assert (x + 1.0).to_float() == 3.0
        assert (1.0 + x).to_float() == 3.0
        assert (x - 0.5).to_float() == 1.5
        assert (4.0 - x).to_float() == 2.0
        assert (x * 3.0).to_float() == 6.0
        assert (x / 2.0).to_float() == 1.0
        assert (1.0 / x).to_float() == 0.5

    @given(nonzero)
    @settings(max_examples=200)
    def test_sqrt(self, a):
        got = DWScalar.from_float(a).sqrt().to_float()
        assert got == pytest.approx(np.sqrt(np.float64(a)), rel=2**-40)

    def test_sqrt_zero_and_negative(self):
        assert DWScalar.from_float(0.0).sqrt().to_float() == 0.0
        with pytest.raises(ValueError):
            DWScalar.from_float(-1.0).sqrt()

    def test_comparisons(self):
        a = DWScalar.from_float(1.0)
        b = DWScalar.from_float(1.0 + 1e-10)
        assert a < b
        assert b > a
        assert a <= a and a >= a and a == a
        assert a < 2.0 and a > 0.5

    def test_abs_neg(self):
        x = DWScalar.from_float(-2.5)
        assert abs(x).to_float() == 2.5
        assert (-x).to_float() == 2.5

    def test_arith_family_propagates(self):
        x = DWScalar.from_float(1.0, arith=lange_rump)
        y = x + x
        assert y.arith is lange_rump


class TestDWArray:
    def test_roundtrip(self):
        v = np.array([np.pi, np.e, 1.0 + 1e-9])
        a = DWArray.from_float64(v)
        np.testing.assert_allclose(a.to_float64(), v, rtol=2**-45)

    def test_elementwise_ops_match_f64(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(-10, 10, 128)
        y = rng.uniform(0.5, 10, 128)
        ax, ay = DWArray.from_float64(x), DWArray.from_float64(y)
        np.testing.assert_allclose((ax + ay).to_float64(), x + y, rtol=2**-40, atol=1e-12)
        np.testing.assert_allclose((ax - ay).to_float64(), x - y, rtol=2**-40, atol=1e-12)
        np.testing.assert_allclose((ax * ay).to_float64(), x * y, rtol=2**-40)
        np.testing.assert_allclose((ax / ay).to_float64(), x / y, rtol=2**-40)

    def test_mixed_f32_operand_uses_fp_kernels(self):
        x = DWArray.from_float64(np.ones(4) * 3.0)
        y = np.full(4, 2.0, dtype=np.float32)
        np.testing.assert_allclose((x * y).to_float64(), np.full(4, 6.0))
        np.testing.assert_allclose((x + y).to_float64(), np.full(4, 5.0))
        np.testing.assert_allclose((x - y).to_float64(), np.full(4, 1.0))
        np.testing.assert_allclose((x / y).to_float64(), np.full(4, 1.5))

    def test_scalar_operand(self):
        x = DWArray.from_float64(np.arange(4, dtype=np.float64))
        np.testing.assert_allclose((x * 2.0).to_float64(), [0, 2, 4, 6])
        np.testing.assert_allclose((2.0 * x).to_float64(), [0, 2, 4, 6])
        np.testing.assert_allclose((x + 1).to_float64(), [1, 2, 3, 4])
        np.testing.assert_allclose((1.0 - x).to_float64(), [1, 0, -1, -2])

    def test_float64_operand_is_split_not_truncated(self):
        x = DWArray.zeros(3)
        y = np.full(3, 1.0 + 1e-9, dtype=np.float64)
        got = (x + y).to_float64()
        np.testing.assert_allclose(got, y, rtol=2**-45)

    def test_sum_precision_vs_float32(self):
        # Sum of 1e5 values near 1.0: f32 accumulates ~1e-2 absolute error,
        # pairwise dw must stay below 1e-8.
        rng = np.random.default_rng(9)
        v = rng.uniform(0.9, 1.1, 100_000)
        exact = v.sum()
        dw_sum = DWArray.from_float64(v).sum().to_float()
        assert abs(dw_sum - exact) < 1e-6
        f32_err = abs(np.sum(v.astype(np.float32), dtype=np.float32) - exact)
        assert abs(dw_sum - exact) < f32_err / 10

    def test_sum_empty_and_odd_lengths(self):
        assert DWArray.zeros(0).sum().to_float() == 0.0
        for n in (1, 2, 3, 7, 33):
            v = np.arange(1.0, n + 1)
            assert DWArray.from_float64(v).sum().to_float() == pytest.approx(v.sum())

    def test_dot_and_norm(self):
        v = np.array([3.0, 4.0])
        a = DWArray.from_float64(v)
        assert a.dot(a).to_float() == pytest.approx(25.0)
        assert a.norm2().to_float() == pytest.approx(5.0)

    def test_from_product_exact(self):
        a = np.float32(1.0 + 2.0**-12) * np.ones(8, dtype=np.float32)
        p = DWArray.from_product(a, a)
        np.testing.assert_array_equal(
            p.to_float64(), a.astype(np.float64) * a.astype(np.float64)
        )

    def test_indexing(self):
        a = DWArray.from_float64(np.array([1.0, 2.0, 3.0]))
        assert isinstance(a[1], DWScalar)
        assert a[1].to_float() == 2.0
        sub = a[0:2]
        assert isinstance(sub, DWArray)
        assert sub.shape == (2,)
        a[0] = 5.5
        assert a[0].to_float() == 5.5
        a[2] = DWScalar.from_float(7.25)
        assert a[2].to_float() == 7.25

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DWArray(np.zeros(3, np.float32), np.zeros(4, np.float32))

    def test_len_size_copy(self):
        a = DWArray.zeros(5)
        assert len(a) == 5 and a.size == 5 and a.shape == (5,)
        b = a.copy()
        b[0] = 1.0
        assert a[0].to_float() == 0.0

    def test_rtruediv(self):
        a = DWArray.from_float64(np.array([1.0, 2.0, 4.0]))
        np.testing.assert_allclose((1.0 / a).to_float64(), [1.0, 0.5, 0.25])

    def test_neg(self):
        a = DWArray.from_float64(np.array([1.0, -2.0]))
        np.testing.assert_allclose((-a).to_float64(), [-1.0, 2.0])
