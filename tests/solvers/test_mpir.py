"""MPIR tests: the paper's headline precision result (Sec. V-B, Figs. 9/10)."""

import numpy as np
import pytest

from repro.solvers import solve
from repro.sparse import poisson2d
from repro.sparse.suitesparse import af_shell_like


@pytest.fixture(scope="module")
def system():
    crs, dims = poisson2d(16)
    rng = np.random.default_rng(7)
    b = rng.standard_normal(crs.n)
    return crs, dims, b


INNER = {
    "solver": "bicgstab",
    "fixed_iterations": 40,
    "record_history": False,
    "tol": 5e-7,
    "preconditioner": {"solver": "ilu0"},
}


def mpir(crs, dims, b, precision, tol, max_outer=10):
    return solve(
        crs, b,
        {"solver": "mpir", "precision": precision, "tol": tol,
         "max_outer": max_outer, "inner": INNER},
        grid_dims=dims, tiles_per_ipu=4,
    )


class TestPrecisionLadder:
    """The Figs. 9/10 result: f32-IR stalls ~1e-6; MPIR-DW ~1e-13; MPIR-DP ~1e-15."""

    def test_plain_ir_stalls(self, system):
        crs, dims, b = system
        res = mpir(crs, dims, b, "float32", tol=1e-13)
        assert res.relative_residual > 1e-8  # cannot break the f32 barrier
        assert res.relative_residual < 1e-5  # but does converge to f32 level

    def test_mpir_dw_reaches_1e12(self, system):
        crs, dims, b = system
        res = mpir(crs, dims, b, "dw", tol=1e-12)
        assert res.relative_residual < 5e-12

    def test_mpir_dp_reaches_1e14(self, system):
        crs, dims, b = system
        res = mpir(crs, dims, b, "float64", tol=1e-14)
        assert res.relative_residual < 5e-14

    def test_ladder_ordering(self, system):
        crs, dims, b = system
        r32 = mpir(crs, dims, b, "float32", tol=1e-15).relative_residual
        rdw = mpir(crs, dims, b, "dw", tol=1e-15, max_outer=6).relative_residual
        rdp = mpir(crs, dims, b, "float64", tol=1e-15, max_outer=6).relative_residual
        assert rdp < rdw < r32


class TestMPIRMechanics:
    def test_history_records_outer_steps(self, system):
        crs, dims, b = system
        res = mpir(crs, dims, b, "dw", tol=1e-12)
        hist = res.stats.residuals
        assert len(hist) >= 2
        assert hist[0] > hist[-1]
        # Each refinement gains several orders of magnitude.
        assert hist[1] / hist[0] < 1e-3

    def test_overhead_is_small(self, system):
        # Table IV: extended-precision ops are a small fraction of runtime
        # when the inner solver runs many iterations.
        crs, dims, b = system
        res = mpir(crs, dims, b, "dw", tol=1e-12)
        frac = res.profile.get("extended_precision", 0.0)
        assert 0.0 < frac < 0.25

    def test_dp_overhead_larger_than_dw(self, system):
        # Table IV: 2% (DW) vs 14% (DP) — emulated double is ~8x slower.
        crs, dims, b = system
        dw = mpir(crs, dims, b, "dw", tol=1e-12)
        dp = mpir(crs, dims, b, "float64", tol=1e-12)
        assert dp.profile["extended_precision"] > dw.profile["extended_precision"]

    def test_extended_solution_exposed(self, system):
        crs, dims, b = system
        res = mpir(crs, dims, b, "dw", tol=1e-12)
        assert res.solver.x_ext is not None
        # The returned x IS the extended solution (f32 rounding would destroy
        # the refined digits).
        x64 = res.solver.x_ext.read_global()
        np.testing.assert_array_equal(res.x, x64)

    def test_invalid_precision_rejected(self, system):
        crs, dims, b = system
        with pytest.raises(ValueError, match="precision"):
            mpir(crs, dims, b, "bfloat16", tol=1e-10)

    def test_converges_on_afshell_double(self):
        # The af_shell7 stand-in of Fig. 10, at reduced size.
        crs = af_shell_like(nx=12, ny=12, layers=3)
        rng = np.random.default_rng(3)
        b = rng.standard_normal(crs.n)
        res = solve(
            crs, b,
            {"solver": "mpir", "precision": "dw", "tol": 1e-11, "max_outer": 12,
             "inner": INNER},
            tiles_per_ipu=4,
        )
        assert res.relative_residual < 1e-10
