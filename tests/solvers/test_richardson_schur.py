"""Tests for the Richardson solver and the Schur interface correction."""

import numpy as np
import pytest

from repro.solvers import solve
from repro.sparse import poisson2d
from repro.sparse.suitesparse import geo_like


@pytest.fixture
def system():
    crs, dims = poisson2d(12)
    b = np.random.default_rng(4).standard_normal(crs.n)
    return crs, dims, b


class TestRichardson:
    def test_converges_with_ilu(self, system):
        crs, dims, b = system
        res = solve(
            crs, b,
            {"solver": "richardson", "sweeps": 30,
             "preconditioner": {"solver": "ilu0"}},
            grid_dims=dims, tiles_per_ipu=4,
        )
        assert res.relative_residual < 1e-2

    def test_plain_richardson_diverges_without_damping(self, system):
        # rho(I - A) > 1 for Poisson: undamped, unpreconditioned Richardson
        # must blow up — a negative test of the iteration itself.
        crs, dims, b = system
        res = solve(
            crs, b,
            {"solver": "richardson", "sweeps": 30, "omega": 1.0},
            grid_dims=dims, tiles_per_ipu=4,
        )
        assert not np.isfinite(res.relative_residual) or res.relative_residual > 1.0

    def test_as_preconditioner(self, system):
        crs, dims, b = system
        res = solve(
            crs, b,
            {"solver": "bicgstab", "tol": 1e-5,
             "preconditioner": {"solver": "richardson", "sweeps": 2,
                                 "preconditioner": {"solver": "jacobi", "sweeps": 1}}},
            grid_dims=dims, tiles_per_ipu=4,
        )
        assert res.relative_residual < 1e-4


class TestSchurInterface:
    def test_reduces_iterations_vs_block_ilu(self, system):
        crs, dims, b = system
        base = solve(
            crs, b,
            {"solver": "bicgstab", "tol": 1e-5, "preconditioner": {"solver": "ilu0"}},
            grid_dims=dims, tiles_per_ipu=16,
        )
        schur = solve(
            crs, b,
            {"solver": "bicgstab", "tol": 1e-5,
             "preconditioner": {"solver": "schur", "inner": {"solver": "ilu0"}}},
            grid_dims=dims, tiles_per_ipu=16,
        )
        assert schur.relative_residual < 1e-4
        assert schur.iterations < base.iterations

    def test_single_tile_is_noop(self, system):
        # With one tile there are no separators: Schur degrades gracefully
        # to the inner preconditioner.
        crs, dims, b = system
        res = solve(
            crs, b,
            {"solver": "bicgstab", "tol": 1e-5,
             "preconditioner": {"solver": "schur", "inner": {"solver": "ilu0"}}},
            grid_dims=dims, tiles_per_ipu=1,
        )
        assert res.relative_residual < 1e-4

    def test_on_3d_irregular(self):
        crs = geo_like(nx=8, ny=8, nz=8, anisotropy=5.0)
        b = np.random.default_rng(5).standard_normal(crs.n)
        base = solve(
            crs, b,
            {"solver": "bicgstab", "tol": 1e-4, "preconditioner": {"solver": "ilu0"}},
            tiles_per_ipu=8,
        )
        schur = solve(
            crs, b,
            {"solver": "bicgstab", "tol": 1e-4,
             "preconditioner": {"solver": "schur", "inner": {"solver": "ilu0"}}},
            tiles_per_ipu=8,
        )
        assert schur.iterations <= base.iterations

    def test_interface_too_large_raises_clear_error(self):
        # The single-tile limitation the paper predicts (Sec. VI-D): a dense
        # 3-D interface across many tiles overflows the 612 kB tile SRAM and
        # must fail with an actionable message.
        from repro.machine.tile import SRAMOverflowError

        crs = geo_like(nx=10, ny=10, nz=10, anisotropy=5.0)
        b = np.ones(crs.n)
        with pytest.raises(SRAMOverflowError, match="multi-step"):
            solve(
                crs, b,
                {"solver": "bicgstab", "tol": 1e-4,
                 "preconditioner": {"solver": "schur", "inner": {"solver": "ilu0"}}},
                tiles_per_ipu=16,
            )

    def test_requires_inner(self, system):
        crs, dims, b = system
        with pytest.raises(ValueError, match="inner"):
            solve(crs, b, {"solver": "schur"}, grid_dims=dims, tiles_per_ipu=4)

    def test_interface_factor_charged(self, system):
        crs, dims, b = system
        res = solve(
            crs, b,
            {"solver": "bicgstab", "tol": 1e-5,
             "preconditioner": {"solver": "schur", "inner": {"solver": "ilu0"}}},
            grid_dims=dims, tiles_per_ipu=16,
        )
        assert res.profile.get("schur_solve", 0) > 0
