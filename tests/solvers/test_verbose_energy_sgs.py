"""Tests for verbose progress callbacks, the energy model, and symmetric GS."""

import numpy as np
import pytest

from repro.machine import IPUDevice
from repro.solvers import solve
from repro.sparse import poisson2d


@pytest.fixture
def system():
    crs, dims = poisson2d(10)
    b = np.random.default_rng(6).standard_normal(crs.n)
    return crs, dims, b


class TestVerboseCallbacks:
    def test_bicgstab_progress_printed(self, system, capsys):
        crs, dims, b = system
        solve(crs, b, {"solver": "bicgstab", "tol": 1e-5, "verbose": 5},
              grid_dims=dims, tiles_per_ipu=4)
        out = capsys.readouterr().out
        assert "[bicgstab] iteration 5" in out

    def test_mpir_progress_printed(self, system, capsys):
        crs, dims, b = system
        solve(
            crs, b,
            {"solver": "mpir", "precision": "dw", "tol": 1e-11, "max_outer": 5,
             "verbose": 1,
             "inner": {"solver": "bicgstab", "fixed_iterations": 30,
                        "record_history": False, "tol": 5e-7,
                        "preconditioner": {"solver": "ilu0"}}},
            grid_dims=dims, tiles_per_ipu=4,
        )
        out = capsys.readouterr().out
        assert "[mpir] refinement 1" in out

    def test_silent_by_default(self, system, capsys):
        crs, dims, b = system
        solve(crs, b, {"solver": "bicgstab", "tol": 1e-5},
              grid_dims=dims, tiles_per_ipu=4)
        assert "[bicgstab]" not in capsys.readouterr().out


class TestEnergyModel:
    def test_energy_scales_with_cycles_and_ipus(self):
        dev = IPUDevice(num_ipus=2, tiles_per_ipu=4)
        dev.profiler.record("x", int(dev.spec.clock_hz))  # 1 second
        assert dev.energy_j() == pytest.approx(2 * IPUDevice.WATTS_PER_IPU)

    def test_matches_paper_m2000_power(self):
        # Four IPUs at the measured 420 W box figure.
        dev = IPUDevice(num_ipus=4, tiles_per_ipu=2)
        dev.profiler.record("x", int(dev.spec.clock_hz))
        assert dev.energy_j() == pytest.approx(420.0)


class TestSymmetricGaussSeidel:
    def test_directions_converge(self, system):
        crs, dims, b = system
        for direction in ("forward", "backward", "symmetric"):
            res = solve(
                crs, b, {"solver": "gauss_seidel", "sweeps": 100,
                          "direction": direction},
                grid_dims=dims, tiles_per_ipu=4,
            )
            assert res.relative_residual < 1e-2, direction

    def test_symmetric_beats_forward_per_sweep_pair(self, system):
        crs, dims, b = system
        # Equal work: 50 symmetric sweeps = 100 directional half-sweeps.
        sym = solve(crs, b, {"solver": "gauss_seidel", "sweeps": 50,
                             "direction": "symmetric"},
                    grid_dims=dims, tiles_per_ipu=4)
        fwd = solve(crs, b, {"solver": "gauss_seidel", "sweeps": 100},
                    grid_dims=dims, tiles_per_ipu=4)
        assert sym.relative_residual <= fwd.relative_residual * 2

    def test_sgs_preconditions_cg(self, system):
        # SGS is symmetric — a legal CG preconditioner.
        crs, dims, b = system
        res = solve(
            crs, b,
            {"solver": "cg", "tol": 1e-6,
             "preconditioner": {"solver": "gauss_seidel", "sweeps": 1,
                                 "direction": "symmetric"}},
            grid_dims=dims, tiles_per_ipu=4,
        )
        plain = solve(crs, b, {"solver": "cg", "tol": 1e-6},
                      grid_dims=dims, tiles_per_ipu=4)
        assert res.relative_residual < 1e-5
        assert res.iterations < plain.iterations

    def test_unknown_direction_rejected(self, system):
        crs, dims, b = system
        with pytest.raises(ValueError, match="direction"):
            solve(crs, b, {"solver": "gauss_seidel", "direction": "sideways"},
                  grid_dims=dims, tiles_per_ipu=4)
