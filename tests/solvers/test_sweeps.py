"""Tests for the level-scheduled sweep engine."""

import numpy as np
import scipy.sparse as sp

from repro.machine import CycleModel, MK2
from repro.solvers.sweeps import build_sweep
from repro.sparse import ModifiedCRS, poisson2d


def local_block(crs):
    return crs.n, crs.row_ptr, crs.col_idx, crs.values.astype(np.float32), crs.diag.astype(np.float32)


class TestForwardSweep:
    def test_unit_lower_solve(self):
        # L y = b with unit diagonal: y = b - L_strict y, rows in order.
        a = np.array(
            [[1.0, 0, 0, 0], [2.0, 1, 0, 0], [0, 3.0, 1, 0], [4.0, 0, 5.0, 1]],
            dtype=np.float64,
        )
        crs = ModifiedCRS.from_scipy(sp.csr_matrix(a))
        n, ptr, cols, vals, diag = local_block(crs)
        plan = build_sweep(n, ptr, cols, vals, include=lambda r, c: c < r)
        b = np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32)
        y = np.zeros(4, dtype=np.float32)
        plan.run(y, b, diag=None)
        expected = np.linalg.solve(np.tril(a), b.astype(np.float64))
        np.testing.assert_allclose(y, expected, rtol=1e-6, atol=1e-6)

    def test_non_unit_forward(self):
        a = np.array([[2.0, 0, 0], [1.0, 4.0, 0], [3.0, 5.0, 8.0]])
        crs = ModifiedCRS.from_scipy(sp.csr_matrix(a))
        n, ptr, cols, vals, diag = local_block(crs)
        plan = build_sweep(n, ptr, cols, vals, include=lambda r, c: c < r)
        b = np.array([2.0, 6.0, 24.0], dtype=np.float32)
        y = np.zeros(3, dtype=np.float32)
        plan.run(y, b, diag=diag)
        np.testing.assert_allclose(y, np.linalg.solve(a, b.astype(np.float64)), rtol=1e-6)


class TestBackwardSweep:
    def test_upper_solve(self):
        a = np.array([[2.0, 1.0, 3.0], [0, 4.0, 5.0], [0, 0, 8.0]])
        crs = ModifiedCRS.from_scipy(sp.csr_matrix(a))
        n, ptr, cols, vals, diag = local_block(crs)
        plan = build_sweep(n, ptr, cols, vals, include=lambda r, c: c > r, backward=True)
        b = np.array([6.0, 9.0, 8.0], dtype=np.float32)
        x = np.zeros(3, dtype=np.float32)
        plan.run(x, b, diag=diag)
        np.testing.assert_allclose(x, np.linalg.solve(a, b.astype(np.float64)), rtol=1e-6)

    def test_backward_levels_reversed(self):
        # Bidiagonal upper: row i depends on i+1 -> n levels, last row first.
        crs, _ = poisson2d(3)
        n, ptr, cols, vals, diag = local_block(crs)
        plan = build_sweep(n, ptr, cols, vals, include=lambda r, c: c > r, backward=True)
        assert plan.level_rows[0][-1] == n - 1  # last row has no upper deps


class TestGSLikeSweep:
    def test_matches_sequential_gauss_seidel(self):
        crs, _ = poisson2d(6)
        n, ptr, cols, vals, diag = local_block(crs)
        plan = build_sweep(n, ptr, cols, vals, include=lambda r, c: np.ones(r.size, bool))
        rng = np.random.default_rng(0)
        b = rng.standard_normal(n).astype(np.float32)
        x_plan = rng.standard_normal(n).astype(np.float32)
        x_seq = x_plan.copy()
        # Sequential reference sweep.
        for i in range(n):
            c, v = crs.row(i)
            x_seq[i] = np.float32(
                (b[i] - np.sum(v.astype(np.float32) * x_seq[c])) / np.float32(diag[i])
            )
        plan.run(x_plan, b, diag=diag)
        # Structurally symmetric matrix: level order == sequential result.
        np.testing.assert_allclose(x_plan, x_seq, rtol=1e-5)

    def test_halo_columns_are_constants(self):
        # Columns >= n reference the halo suffix of x_full, never updated.
        n = 2
        ptr = np.array([0, 1, 2])
        cols = np.array([2, 3])  # both rows reference halo cells
        vals = np.array([1.0, 2.0], dtype=np.float32)
        plan = build_sweep(n, ptr, cols, vals, include=lambda r, c: np.ones(r.size, bool))
        x_full = np.array([0.0, 0.0, 10.0, 20.0], dtype=np.float32)
        b = np.array([12.0, 44.0], dtype=np.float32)
        plan.run(x_full, b, diag=np.array([2.0, 2.0], dtype=np.float32))
        np.testing.assert_allclose(x_full[:2], [1.0, 2.0])
        np.testing.assert_allclose(x_full[2:], [10.0, 20.0])  # halo untouched
        # One level: no dependencies through halo columns.
        assert plan.schedule.num_levels == 1


class TestSweepCost:
    def test_cycles_positive_and_level_dependent(self):
        crs, _ = poisson2d(8)
        n, ptr, cols, vals, diag = local_block(crs)
        fwd = build_sweep(n, ptr, cols, vals, include=lambda r, c: c < r)
        model = CycleModel()
        c = fwd.cycles(model, MK2)
        assert c > 0
        # More levels (more barriers) on the same work costs more.
        diag_only = build_sweep(n, ptr, cols, vals, include=lambda r, c: np.zeros(r.size, bool))
        assert diag_only.schedule.num_levels == 1
        assert fwd.schedule.num_levels > 1

    def test_empty_block(self):
        plan = build_sweep(0, np.array([0]), np.array([]), np.array([]),
                           include=lambda r, c: np.ones(r.size, bool))
        x = np.zeros(0, dtype=np.float32)
        plan.run(x, np.zeros(0, dtype=np.float32))
        assert plan.schedule.num_levels == 0
