"""The structure-keyed compile cache and reusable solve sessions."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.graph.passes import compile_invocations, pass_invocations
from repro.machine import IPUDevice
from repro.solvers import (
    ProgramCache,
    SolverSession,
    default_cache,
    fingerprint_matrix,
    fingerprint_solve,
    solve,
    solve_many,
)
from repro.solvers.session import resolve_cache
from repro.sparse import ModifiedCRS, poisson2d, poisson3d

CG = {"solver": "cg", "tol": 1e-6}


def _system(n=6):
    crs, dims = poisson2d(n)
    b = np.random.default_rng(0).standard_normal(crs.n)
    return crs, dims, b


def _scaled(crs, factor):
    """Same sparsity pattern, different values."""
    return ModifiedCRS(crs.diag * factor, crs.values * factor,
                       crs.col_idx, crs.row_ptr)


class TestFingerprint:
    def test_matrix_hash_is_deterministic(self):
        crs, _, _ = _system()
        assert fingerprint_matrix(crs) == fingerprint_matrix(crs)

    def test_matrix_hash_covers_values_not_just_structure(self):
        # Values are baked into tile-local blocks at distribution time, so a
        # value-only change must produce a different key.
        crs, _, _ = _system()
        assert fingerprint_matrix(crs) != fingerprint_matrix(_scaled(crs, 2.0))

    def test_solve_key_excludes_rhs_and_x0(self):
        crs, dims, _ = _system()
        k1 = fingerprint_solve(crs, CG, grid_dims=dims)
        k2 = fingerprint_solve(crs, CG, grid_dims=dims)
        assert k1 == k2

    @pytest.mark.parametrize("change", [
        {"num_ipus": 2},
        {"tiles_per_ipu": 8},
        {"num_tiles": 3},
        {"grid_dims": None},
        {"blockwise_halo": False},
        {"optimize": False},
        {"backend": "fast"},
        {"resilient": True},
    ])
    def test_every_structural_knob_changes_the_key(self, change):
        crs, dims, _ = _system()
        base = dict(num_ipus=1, tiles_per_ipu=4, grid_dims=dims)
        assert fingerprint_solve(crs, CG, **base) != \
            fingerprint_solve(crs, CG, **{**base, **change})

    def test_config_change_changes_the_key(self):
        crs, dims, _ = _system()
        assert fingerprint_solve(crs, CG, grid_dims=dims) != \
            fingerprint_solve(crs, {"solver": "cg", "tol": 1e-8},
                              grid_dims=dims)

    def test_equivalent_config_spellings_share_a_key(self):
        # load_config canonicalizes; a JSON string and the same dict must
        # land on the same cache entry.
        import json

        crs, dims, _ = _system()
        assert fingerprint_solve(crs, CG, grid_dims=dims) == \
            fingerprint_solve(crs, json.dumps(CG), grid_dims=dims)


class TestProgramCache:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ReproError):
            ProgramCache(capacity=0)

    def test_lru_eviction_counts_and_drops_oldest(self):
        cache = ProgramCache(capacity=2)
        for key in ("a", "b", "c"):
            cache.put(key, object())
        assert cache.stats() == {"hits": 0, "misses": 0, "evictions": 1,
                                 "size": 2, "capacity": 2}
        assert "a" not in cache and "b" in cache and "c" in cache

    def test_get_refreshes_lru_order(self):
        cache = ProgramCache(capacity=2)
        cache.put("a", object())
        cache.put("b", object())
        assert cache.get("a") is not None  # refresh: "b" is now oldest
        cache.put("c", object())
        assert "a" in cache and "b" not in cache

    def test_contains_has_no_counter_side_effects(self):
        cache = ProgramCache()
        cache.put("a", object())
        assert "a" in cache and "zzz" not in cache
        assert cache.stats()["hits"] == 0 and cache.stats()["misses"] == 0

    def test_clear_and_repr(self):
        cache = ProgramCache(capacity=3)
        cache.put("a", object())
        cache.get("missing")
        assert "hits=0" in repr(cache) and "misses=1" in repr(cache)
        cache.clear()
        assert len(cache) == 0

    def test_resolve_cache_forms(self):
        cache = ProgramCache()
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        assert resolve_cache(True) is default_cache()
        assert resolve_cache(cache) is cache
        with pytest.raises(TypeError):
            resolve_cache("yes please")


class TestCacheHits:
    def test_hit_is_bit_identical_and_runs_no_passes(self):
        crs, dims, b = _system()
        cache = ProgramCache()
        cold = solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4, cache=cache)
        assert cache.stats()["misses"] == 1
        passes0, compiles0 = pass_invocations(), compile_invocations()
        hit = solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4, cache=cache)
        # The hit re-executed the cached CompiledProgram without re-lowering.
        assert pass_invocations() == passes0
        assert compile_invocations() == compiles0
        assert cache.stats()["hits"] == 1
        np.testing.assert_array_equal(hit.x, cold.x)
        assert hit.cycles == cold.cycles
        assert hit.stats.residuals == cold.stats.residuals
        assert hit.relative_residual == cold.relative_residual

    def test_hit_with_new_rhs_matches_uncached_solve(self):
        crs, dims, b = _system()
        cache = ProgramCache()
        solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4, cache=cache)
        b2 = np.random.default_rng(9).standard_normal(crs.n)
        hit = solve(crs, b2, CG, grid_dims=dims, tiles_per_ipu=4, cache=cache)
        ref = solve(crs, b2, CG, grid_dims=dims, tiles_per_ipu=4)
        assert cache.stats()["hits"] == 1
        np.testing.assert_array_equal(hit.x, ref.x)
        assert hit.cycles == ref.cycles

    def test_hit_with_x0_matches_uncached_solve(self):
        crs, dims, b = _system()
        cache = ProgramCache()
        solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4, cache=cache)
        x0 = np.random.default_rng(2).standard_normal(crs.n)
        hit = solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4, cache=cache,
                    x0=x0)
        ref = solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4, x0=x0)
        np.testing.assert_array_equal(hit.x, ref.x)
        assert hit.cycles == ref.cycles

    def test_value_change_misses(self):
        crs, dims, b = _system()
        cache = ProgramCache()
        solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4, cache=cache)
        solve(_scaled(crs, 2.0), b, CG, grid_dims=dims, tiles_per_ipu=4,
              cache=cache)
        assert cache.stats() == {"hits": 0, "misses": 2, "evictions": 0,
                                 "size": 2, "capacity": 8}

    def test_shape_and_config_changes_miss(self):
        crs, dims, b = _system()
        cache = ProgramCache()
        solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4, cache=cache)
        solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=8, cache=cache)
        solve(crs, b, {"solver": "bicgstab", "tol": 1e-6}, grid_dims=dims,
              tiles_per_ipu=4, cache=cache)
        assert cache.stats()["misses"] == 3 and cache.stats()["hits"] == 0

    def test_eviction_under_capacity_pressure(self):
        crs, dims, b = _system()
        cache = ProgramCache(capacity=1)
        solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4, cache=cache)
        solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=8, cache=cache)
        # The 4-tile entry was evicted; solving it again recompiles.
        solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4, cache=cache)
        stats = cache.stats()
        assert stats["evictions"] == 2
        assert stats["misses"] == 3 and stats["hits"] == 0
        assert stats["size"] == 1

    def test_explicit_device_disables_caching(self):
        crs, dims, b = _system()
        cache = ProgramCache()
        dev = IPUDevice(num_ipus=1, tiles_per_ipu=4)
        solve(crs, b, CG, grid_dims=dims, device=dev, cache=cache)
        assert len(cache) == 0 and cache.stats()["misses"] == 0

    def test_stats_are_detached_per_result(self):
        # Under caching the solver tree's stats are reset in place on every
        # hit; each SolveResult must keep its own copy.
        crs, dims, b = _system()
        cache = ProgramCache()
        first = solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4, cache=cache)
        its = first.iterations
        solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4, cache=cache)
        assert first.iterations == its


class TestSolverSession:
    def test_session_solves_and_counts(self):
        crs, dims, b = _system()
        session = SolverSession(crs, CG, grid_dims=dims, tiles_per_ipu=4)
        r1 = session.solve(b)
        r2 = session.solve(b)
        np.testing.assert_array_equal(r1.x, r2.x)
        assert r1.cycles == r2.cycles
        assert session.stats() == {"hits": 1, "misses": 1, "evictions": 0,
                                   "size": 1, "capacity": 8}

    def test_session_rejects_device(self):
        crs, dims, b = _system()
        dev = IPUDevice(num_ipus=1, tiles_per_ipu=4)
        with pytest.raises(ReproError, match="device"):
            SolverSession(crs, CG, device=dev)
        session = SolverSession(crs, CG, grid_dims=dims, tiles_per_ipu=4)
        with pytest.raises(ReproError, match="device"):
            session.solve(b, device=dev)

    def test_per_call_overrides_key_new_entries(self):
        crs, dims, b = _system()
        session = SolverSession(crs, CG, grid_dims=dims, tiles_per_ipu=4)
        session.solve(b)
        session.solve(b, tiles_per_ipu=8)
        assert session.stats()["misses"] == 2 and len(session.cache) == 2

    def test_sessions_can_share_a_cache(self):
        crs, dims, b = _system()
        cache = ProgramCache()
        s1 = SolverSession(crs, CG, cache=cache, grid_dims=dims, tiles_per_ipu=4)
        s2 = SolverSession(crs, CG, cache=cache, grid_dims=dims, tiles_per_ipu=4)
        s1.solve(b)
        s2.solve(b)  # second session hits the first one's entry
        assert cache.stats() == {"hits": 1, "misses": 1, "evictions": 0,
                                 "size": 1, "capacity": 8}

    def test_solve_many_returns_one_result_per_rhs(self):
        crs, dims, _ = _system()
        rng = np.random.default_rng(5)
        bs = [rng.standard_normal(crs.n) for _ in range(3)]
        cache = ProgramCache()
        results = solve_many(crs, bs, CG, cache=cache, grid_dims=dims,
                             tiles_per_ipu=4)
        assert len(results) == 3
        for b, r in zip(bs, results):
            ref = solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4)
            np.testing.assert_array_equal(r.x, ref.x)
        assert cache.stats()["misses"] == 1 and cache.stats()["hits"] == 2

    def test_solve_many_validates_x0s_length(self):
        crs, dims, b = _system()
        with pytest.raises(ReproError, match="initial guesses"):
            solve_many(crs, [b, b], CG, x0s=[b], grid_dims=dims,
                       tiles_per_ipu=4)


@pytest.mark.filterwarnings("ignore::RuntimeWarning")
class TestCachedResilience:
    FAULTS = "seed=7;bitflip:p=0.03,where=exchange"
    KW = dict(num_ipus=2, tiles_per_ipu=16)

    def _system3d(self):
        crs, dims = poisson3d(8)
        b = np.random.default_rng(3).standard_normal(crs.n)
        return crs, dims, b

    def test_cached_faulty_runs_replay_bit_identically(self):
        # Session reuse under injection: a hit resets the monitor and the
        # fault stream, so the recovered run replays exactly — solution,
        # cycles, and the full resilience report.
        crs, dims, b = self._system3d()
        session = SolverSession(crs, CG, grid_dims=dims, **self.KW)
        runs = [session.solve(b, inject_faults=self.FAULTS, resilience=True)
                for _ in range(2)]
        assert session.stats()["hits"] >= 1
        assert runs[0].resilience.rollbacks > 0
        assert np.array_equal(runs[0].x, runs[1].x)
        assert runs[0].cycles == runs[1].cycles
        assert runs[0].resilience.to_dict() == runs[1].resilience.to_dict()

    def test_cached_faulty_run_matches_uncached(self):
        crs, dims, b = self._system3d()
        cached = solve(crs, b, CG, grid_dims=dims, cache=ProgramCache(),
                       inject_faults=self.FAULTS, resilience=True, **self.KW)
        plain = solve(crs, b, CG, grid_dims=dims,
                      inject_faults=self.FAULTS, resilience=True, **self.KW)
        assert np.array_equal(cached.x, plain.x)
        assert cached.cycles == plain.cycles
        assert cached.resilience.to_dict() == plain.resilience.to_dict()
