"""``solve(max_wall_seconds=...)``: cooperative wall-clock deadlines.

The deadline rides the same per-iteration hook seam as ``on_progress``
(docs/serving.md): an exceeded budget cancels the solve mid-iteration with
a typed :class:`~repro.errors.JobTimeoutError` carrying the partial
convergence record, on every backend, standalone or through the compile
cache.
"""

import numpy as np
import pytest

from repro.errors import JobTimeoutError
from repro.solvers import ProgramCache, solve
from repro.sparse import poisson2d

CONFIG = {"solver": "cg", "tol": 1e-10, "max_iterations": 400}


def _system(grid=12, seed=3):
    crs, dims = poisson2d(grid)
    b = np.random.default_rng(seed).standard_normal(crs.n)
    return crs, dims, b


class TestDeadline:
    def test_tiny_budget_raises_typed_timeout_with_partial_stats(self):
        crs, dims, b = _system()
        with pytest.raises(JobTimeoutError) as exc_info:
            solve(crs, b, CONFIG, grid_dims=dims, max_wall_seconds=1e-9)
        err = exc_info.value
        assert err.exit_code == 17
        assert err.budget_seconds == pytest.approx(1e-9)
        assert err.wall_seconds > err.budget_seconds
        # Partial record: the solve got at most a few iterations in, and the
        # stats copy is detached (mutating it cannot touch a cached entry).
        assert err.stats is not None
        assert err.stats.total_iterations == err.iteration
        assert err.stats.total_iterations < 400

    def test_generous_budget_is_observational(self):
        crs, dims, b = _system()
        plain = solve(crs, b, CONFIG, grid_dims=dims)
        timed = solve(crs, b, CONFIG, grid_dims=dims, max_wall_seconds=600.0)
        np.testing.assert_array_equal(plain.x, timed.x)
        assert plain.stats.residuals == timed.stats.residuals
        assert plain.cycles == timed.cycles

    @pytest.mark.parametrize("backend", ["fast", "fused"])
    def test_deadline_fires_on_untimed_backends(self, backend):
        crs, dims, b = _system()
        with pytest.raises(JobTimeoutError):
            solve(crs, b, CONFIG, grid_dims=dims, backend=backend,
                  max_wall_seconds=1e-9)

    def test_invalid_budget_rejected(self):
        crs, dims, b = _system()
        with pytest.raises(Exception, match="max_wall_seconds"):
            solve(crs, b, CONFIG, grid_dims=dims, max_wall_seconds=0.0)

    def test_deadline_fires_every_iteration_not_on_progress_cadence(self):
        """The budget check must not ride the throttled progress stride:
        even with ``progress_every`` far beyond the iteration count, an
        exceeded deadline still cancels the solve."""
        crs, dims, b = _system()
        with pytest.raises(JobTimeoutError) as exc_info:
            solve(crs, b, CONFIG, grid_dims=dims, max_wall_seconds=1e-9,
                  progress_every=10**9)
        assert exc_info.value.stats.total_iterations < 400

    def test_deadline_fires_without_residual_history(self):
        """``record_history=False`` loops have no record callback to
        piggyback on; the dedicated per-iteration tick still enforces the
        budget."""
        crs, dims, b = _system()
        config = dict(CONFIG, record_history=False)
        with pytest.raises(JobTimeoutError) as exc_info:
            solve(crs, b, config, grid_dims=dims, max_wall_seconds=1e-9)
        assert exc_info.value.exit_code == 17

    def test_deadline_fires_inside_nested_solver_loops(self):
        """MPIR spends its time in the inner solver's loop; the deadline
        is installed on every member of the config tree, so the inner
        iterations cancel the solve too."""
        crs, dims, b = _system()
        config = {"solver": "mpir", "tol": 1e-12,
                  "inner": {"solver": "cg", "fixed_iterations": 50,
                            "record_history": False}}
        with pytest.raises(JobTimeoutError):
            solve(crs, b, config, grid_dims=dims, max_wall_seconds=1e-9)

    def test_aborted_cached_entry_recovers_on_next_use(self):
        """A timeout mid-run leaves the cache entry in a partial state;
        the next hit's ``prepare`` restores the initial image, so the
        follow-up solve is bit-identical to an uncached one."""
        crs, dims, b = _system()
        cache = ProgramCache()
        # Warm the cache, then abort a hit mid-solve.
        warm = solve(crs, b, CONFIG, grid_dims=dims, cache=cache)
        with pytest.raises(JobTimeoutError):
            solve(crs, b, CONFIG, grid_dims=dims, cache=cache,
                  max_wall_seconds=1e-9)
        again = solve(crs, b, CONFIG, grid_dims=dims, cache=cache)
        np.testing.assert_array_equal(warm.x, again.x)
        assert warm.stats.residuals == again.stats.residuals
        assert warm.cycles == again.cycles
