"""The resilient solve driver: failure classification, checkpoint/rollback
recovery under injected faults, and OOM graceful degradation."""

import numpy as np
import pytest

from repro.errors import SolverBreakdownError, SRAMOverflowError
from repro.solvers import ResilienceConfig, solve
from repro.sparse import poisson2d, poisson3d

# Injected bit flips legitimately push f32 arithmetic through inf/NaN before
# detection kicks in; those numpy warnings are the faults working as intended.
pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


def _system(n=8):
    crs, dims = poisson3d(n)
    b = np.random.default_rng(3).standard_normal(crs.n)
    return crs, dims, b


CG = {"solver": "cg", "tol": 1e-6}


class TestFailureField:
    def test_converged_solve_has_no_failure(self):
        crs, dims, b = _system()
        r = solve(crs, b, CG, tiles_per_ipu=8, grid_dims=dims)
        assert r.failure is None
        assert "failure" not in repr(r)

    def test_max_iterations(self):
        crs, dims, b = _system()
        r = solve(crs, b, {"solver": "cg", "tol": 1e-12, "max_iterations": 3},
                  tiles_per_ipu=8, grid_dims=dims)
        assert r.failure == "max_iterations"
        assert r.stats.failure == "max_iterations"
        assert "failure='max_iterations'" in repr(r)
        assert "failure='max_iterations'" in repr(r.stats)

    @pytest.mark.parametrize("backend", ["sim", "fast"])
    @pytest.mark.parametrize("solver", ["bicgstab", "cg"])
    def test_krylov_breakdown_exits_cleanly(self, backend, solver):
        # A right-hand side at the bottom of the f32 range collapses rho to
        # ~1e-34 < the 1e-30 breakdown guard after one iteration: the guard
        # must terminate the loop (no NaN storm, no max_iterations burn) and
        # the failure must classify as "breakdown" on both backends.
        crs, _ = poisson2d(3)
        b = np.full(crs.n, 1e-17)
        r = solve(crs, b, {"solver": solver, "tol": 1e-9},
                  tiles_per_ipu=4, backend=backend)
        assert r.failure == "breakdown"
        assert r.iterations <= 2  # the guard exited, not the budget
        assert np.isfinite(r.x).all()

    def test_raise_on_failure_maps_breakdown_to_exception(self):
        crs, _ = poisson2d(3)
        b = np.full(crs.n, 1e-17)
        with pytest.raises(SolverBreakdownError):
            solve(crs, b, {"solver": "bicgstab", "tol": 1e-9}, tiles_per_ipu=4,
                  resilience="raise_on_failure=true,max_rollbacks=0")


class TestResilienceConfig:
    def test_parse_forms(self):
        assert ResilienceConfig.parse(None) is None
        assert ResilienceConfig.parse(False) is None
        assert ResilienceConfig.parse(True) == ResilienceConfig()
        assert ResilienceConfig.parse("") == ResilienceConfig()
        cfg = ResilienceConfig.parse("checkpoint_every=5,max_rollbacks=7,backoff=1.5")
        assert (cfg.checkpoint_every, cfg.max_rollbacks, cfg.backoff) == (5, 7, 1.5)
        assert ResilienceConfig.parse({"degrade_on_oom": False}).degrade_on_oom is False
        assert ResilienceConfig.parse(cfg) is cfg

    def test_parse_rejects(self):
        from repro.errors import ReproError

        for bad in ("checkpoint_every", "nonsense=1", "max_rollbacks=-1",
                    "backoff=0.5", "min_tiles=0"):
            with pytest.raises(ReproError):
                ResilienceConfig.parse(bad)


class TestCleanRunParity:
    def test_resilience_on_clean_run_is_bit_identical(self):
        crs, dims, b = _system()
        kw = dict(num_ipus=2, tiles_per_ipu=16, grid_dims=dims)
        plain = solve(crs, b, CG, **kw)
        resil = solve(crs, b, CG, resilience=True, **kw)
        assert np.array_equal(plain.x, resil.x)
        assert plain.cycles == resil.cycles
        assert resil.resilience.outcome == "clean"
        assert resil.resilience.rollbacks == 0
        assert plain.resilience is None


class TestRecovery:
    KW = dict(num_ipus=2, tiles_per_ipu=16)
    FAULTS = "seed=7;bitflip:p=0.03,where=exchange"

    def test_rollback_recovers_to_tolerance(self):
        crs, dims, b = _system()
        clean = solve(crs, b, CG, grid_dims=dims, **self.KW)
        faulty = solve(crs, b, CG, grid_dims=dims, inject_faults=self.FAULTS,
                       resilience=True, **self.KW)
        rep = faulty.resilience
        assert rep.faults_injected > 0
        assert rep.rollbacks > 0
        assert rep.outcome == "recovered"
        assert faulty.failure is None
        # recovered run meets the same tolerance as the clean one
        assert faulty.relative_residual <= 1e-5
        assert clean.relative_residual <= 1e-5

    def test_faulty_runs_replay_bit_identically(self):
        crs, dims, b = _system()
        runs = [solve(crs, b, CG, grid_dims=dims, inject_faults=self.FAULTS,
                      resilience=True, **self.KW) for _ in range(2)]
        assert np.array_equal(runs[0].x, runs[1].x)
        assert runs[0].cycles == runs[1].cycles
        assert runs[0].resilience.to_dict() == runs[1].resilience.to_dict()

    def test_rollback_records_reach_report_and_stats(self):
        crs, dims, b = _system()
        r = solve(crs, b, CG, grid_dims=dims, inject_faults=self.FAULTS,
                  resilience=True, **self.KW)
        rep = r.resilience.to_dict()
        assert rep["rollback_reasons"]
        assert set(rep["rollback_reasons"]) <= {
            "nan_residual", "divergence", "stagnation", "silent_corruption"}
        assert rep["checkpoints"] >= 1
        assert "outcome=recovered" in r.resilience.summary()


class TestDegradation:
    def test_tile_oom_without_resilience_raises(self):
        crs, dims, b = _system()
        with pytest.raises(SRAMOverflowError):
            solve(crs, b, CG, num_ipus=2, tiles_per_ipu=16, grid_dims=dims,
                  inject_faults="seed=1;tile_oom:tile=3,at=40")

    def test_tile_oom_degrades_to_fewer_tiles_and_completes(self):
        crs, dims, b = _system()
        r = solve(crs, b, CG, num_ipus=2, tiles_per_ipu=16, grid_dims=dims,
                  inject_faults="seed=1;tile_oom:tile=3,at=40", resilience=True)
        rep = r.resilience
        assert rep.outcome == "degraded"
        assert rep.restarts == 1
        assert rep.final_num_tiles == 16  # re-partitioned to half the tiles
        assert rep.faults_by_kind.get("tile_oom") == 1
        assert r.failure is None
        assert r.relative_residual <= 1e-5

    def test_degraded_restart_warm_starts_from_checkpoint(self):
        # An OOM after the solve has made progress must not discard it: the
        # rebuilt program warm-starts from the latest checkpointed iterate
        # and the report counts the carried iterations.
        crs, dims, b = _system()
        r = solve(crs, b, CG, num_ipus=2, tiles_per_ipu=16, grid_dims=dims,
                  inject_faults="seed=1;tile_oom:tile=3,at=300",
                  resilience="checkpoint_every=5")
        rep = r.resilience
        assert rep.outcome == "degraded"
        assert rep.carried_iterations > 0
        assert rep.to_dict()["carried_iterations"] == rep.carried_iterations
        assert f"carried_iterations={rep.carried_iterations}" in rep.summary()
        assert r.relative_residual <= 1e-5

    def test_oom_before_first_checkpoint_carries_nothing(self):
        # at=40 fires before any checkpoint exists; the restart is cold.
        crs, dims, b = _system()
        r = solve(crs, b, CG, num_ipus=2, tiles_per_ipu=16, grid_dims=dims,
                  inject_faults="seed=1;tile_oom:tile=3,at=40",
                  resilience="checkpoint_every=5")
        assert r.resilience.outcome == "degraded"
        assert r.resilience.carried_iterations == 0
        assert "carried_iterations" not in r.resilience.summary()

    def test_degrade_on_oom_false_raises(self):
        crs, dims, b = _system()
        with pytest.raises(SRAMOverflowError):
            solve(crs, b, CG, num_ipus=2, tiles_per_ipu=16, grid_dims=dims,
                  inject_faults="seed=1;tile_oom:tile=3,at=40",
                  resilience="degrade_on_oom=false")


class TestMpirResilience:
    def test_mpir_recovers_under_faults(self):
        crs, dims, b = _system()
        cfg = {"solver": "mpir", "tol": 1e-10, "precision": "dw",
               "inner": {"solver": "cg", "fixed_iterations": 25}}
        clean = solve(crs, b, cfg, num_ipus=2, tiles_per_ipu=16, grid_dims=dims)
        faulty = solve(crs, b, cfg, num_ipus=2, tiles_per_ipu=16, grid_dims=dims,
                       inject_faults="seed=13;bitflip:p=0.01,where=exchange",
                       resilience=True)
        assert clean.relative_residual <= 1e-9
        assert faulty.failure is None
        assert faulty.relative_residual <= 1e-9
