"""Registry-wide smoke test: every registered solver builds, runs, and
reduces the residual on a small Poisson system."""

import numpy as np
import pytest

from repro.solvers import SOLVERS, solve
from repro.sparse import poisson2d

#: Minimal runnable config per registry entry.
CONFIGS = {
    "bicgstab": {"solver": "bicgstab", "tol": 1e-5},
    "cg": {"solver": "cg", "tol": 1e-5},
    "gauss_seidel": {"solver": "gauss_seidel", "sweeps": 60},
    "ilu0": {"solver": "ilu0"},
    "dilu": {"solver": "dilu"},
    "jacobi": {"solver": "jacobi", "sweeps": 60, "omega": 0.8},
    "richardson": {"solver": "richardson", "sweeps": 30,
                   "preconditioner": {"solver": "jacobi", "sweeps": 1, "omega": 0.8}},
    "identity": {"solver": "identity"},
    "mpir": {"solver": "mpir", "precision": "dw", "tol": 1e-10, "max_outer": 6,
             "inner": {"solver": "bicgstab", "fixed_iterations": 30, "tol": 5e-7,
                        "record_history": False,
                        "preconditioner": {"solver": "ilu0"}}},
    "schur": {"solver": "schur", "inner": {"solver": "ilu0"}},
    "multigrid": {"solver": "multigrid", "grid_dims": (10, 10), "cycles": 6},
}

#: Residual each config must reach (identity just copies b — no reduction).
THRESHOLDS = {
    "identity": np.inf,
    "ilu0": 0.8,
    "dilu": 0.9,
    "schur": 0.8,
    "jacobi": 0.2,
    "richardson": 0.2,
    "gauss_seidel": 0.05,
    "multigrid": 1e-3,
    "bicgstab": 1e-4,
    "cg": 1e-4,
    "mpir": 1e-9,
}


def test_every_registered_solver_has_a_smoke_config():
    assert set(CONFIGS) == set(SOLVERS)


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_solver_runs_and_improves(name):
    crs, dims = poisson2d(10)
    b = np.random.default_rng(77).standard_normal(crs.n)
    res = solve(crs, b, CONFIGS[name], grid_dims=dims, tiles_per_ipu=4)
    assert np.all(np.isfinite(res.x)), name
    assert res.cycles > 0
    threshold = THRESHOLDS[name]
    if np.isfinite(threshold):
        assert res.relative_residual < threshold, (
            f"{name}: residual {res.relative_residual:.2e} above {threshold}"
        )
