"""Observability is observational: wall tracing, metrics, and progress
callbacks must never change what a solve computes.

The property here is the wall-clock twin of the sim tracer's
bit-identity guarantee (docs/observability.md): for any combination of
performance backend, batch width, and observability hooks, the observed
run returns bit-identical solutions, residual histories, and kernel
counters to a plain run — including through session-cache hits.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers import SolverSession, solve
from repro.sparse import poisson3d

CG = '{"solver": "cg", "tol": 1e-7, "max_iterations": 60}'


def _rhs(n: int, batch: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((batch, n))
    return b[0] if batch == 1 else b


def _signature(res):
    """Everything a solve computes, hashed down to comparable pieces."""
    return (
        np.asarray(res.x).tobytes(),
        tuple(res.stats.iterations),
        tuple(res.stats.residuals),
        res.stats.failure,
        res.kernel_counters,
        (
            tuple(tuple(s.residuals) for s in res.batch_stats)
            if res.batch_stats is not None
            else None
        ),
    )


@given(
    backend=st.sampled_from(["fast", "fused"]),
    batch=st.sampled_from([1, 3]),
    seed=st.integers(0, 10**6),
    stride=st.integers(1, 5),
)
@settings(max_examples=12, deadline=None)
def test_observed_solve_is_bit_identical_to_plain(backend, batch, seed, stride):
    crs, dims = poisson3d(5)
    b = _rhs(crs.n, batch, seed)
    plain = solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4, backend=backend)
    samples = []
    observed = solve(
        crs, b, CG, grid_dims=dims, tiles_per_ipu=4, backend=backend,
        wall_trace=True, metrics=True, on_progress=samples.append,
        progress_every=stride,
    )
    assert _signature(observed) == _signature(plain)
    assert observed.wall_profile["kernels"]
    assert len(observed.metrics) > 0
    expected_samples = [i for i in plain.stats.iterations if i % stride == 0]
    assert [p.iteration for p in samples] == expected_samples


@given(backend=st.sampled_from(["fast", "fused"]), seed=st.integers(0, 10**6))
@settings(max_examples=6, deadline=None)
def test_observed_session_cache_hit_is_bit_identical(backend, seed):
    crs, dims = poisson3d(5)
    b1 = _rhs(crs.n, 1, seed)
    b2 = _rhs(crs.n, 1, seed + 1)

    plain = SolverSession(crs, CG, grid_dims=dims, tiles_per_ipu=4,
                          backend=backend)
    observed = SolverSession(crs, CG, grid_dims=dims, tiles_per_ipu=4,
                             backend=backend)
    p1 = plain.solve(b1)
    p2 = plain.solve(b2)  # cache hit
    samples = []
    o1 = observed.solve(b1, wall_trace=True, metrics=True,
                        on_progress=samples.append)
    n1 = len(samples)
    o2 = observed.solve(b2, wall_trace=True, metrics=True,
                        on_progress=samples.append)  # cache hit, still observed
    assert observed.stats()["hits"] >= 1
    assert _signature(o1) == _signature(p1)
    assert _signature(o2) == _signature(p2)
    assert n1 and len(samples) > n1  # hooks fired on the hit too
