"""The multi-RHS batch axis (docs/solvers.md, "Batched Krylov solves").

The batching contract has three legs, each tested here:

1. **Bit-identity** — column ``j`` of a batched solve is bit-for-bit the
   single-RHS solve of ``b[j]`` alone: solution, iteration count, failure
   classification, and the full per-iteration residual history.  Per-RHS
   convergence masking multiplies frozen columns by exactly ``0.0`` and
   active columns by exactly ``1.0``, both bitwise-exact in IEEE f32.
2. **One halo exchange per iteration** — the batched program executes the
   *same number* of exchange phases as a single-RHS solve; the payload
   carries all columns, so exchange count is independent of the batch size
   (the amortization the paper's SpMV-bound solvers want).
3. **Caching** — the batch size is part of the structure fingerprint, and
   a batched cache hit replays bit-identically with freshly reset per-RHS
   stats.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.solvers import SolverSession, solve
from repro.solvers.session import fingerprint_solve
from repro.sparse import poisson2d

CG = {"solver": "cg", "tol": 1e-6}
CG_JACOBI = {"solver": "cg", "tol": 1e-6,
             "preconditioner": {"solver": "jacobi", "sweeps": 2}}
BICGSTAB = {"solver": "bicgstab", "tol": 1e-6}
BICGSTAB_JACOBI = {"solver": "bicgstab", "tol": 1e-6,
                   "preconditioner": {"solver": "jacobi", "sweeps": 2}}
CONFIGS = [CG, CG_JACOBI, BICGSTAB, BICGSTAB_JACOBI]

KW = dict(tiles_per_ipu=8)


def _system(n=10, batch=4, seed=42):
    crs, dims = poisson2d(n)
    bs = np.random.default_rng(seed).standard_normal((batch, crs.n))
    return crs, dims, bs


def _assert_columns_match_singles(crs, dims, bs, config, backend="sim"):
    batched = solve(crs, bs, config, grid_dims=dims, backend=backend, **KW)
    assert batched.batch == len(bs)
    assert batched.x.shape == bs.shape
    for j, b in enumerate(bs):
        single = solve(crs, b, config, grid_dims=dims, backend=backend, **KW)
        assert np.array_equal(batched.x[j], single.x), f"column {j} diverged"
        st_j = batched.batch_stats[j]
        assert st_j.total_iterations == single.stats.total_iterations
        assert st_j.residuals == single.stats.residuals
        assert st_j.failure == single.stats.failure
        assert batched.relative_residuals[j] == single.relative_residual
    assert batched.relative_residual == max(batched.relative_residuals)
    return batched


class TestBitIdentity:
    @pytest.mark.parametrize("config", CONFIGS,
                             ids=["cg", "cg+jacobi", "bicgstab", "bicgstab+jacobi"])
    def test_every_column_matches_its_single_rhs_solve(self, config):
        crs, dims, bs = _system()
        _assert_columns_match_singles(crs, dims, bs, config)

    @pytest.mark.parametrize("backend", ["fast", "fused"])
    def test_untimed_backends_match_too(self, backend):
        crs, dims, bs = _system(batch=3)
        _assert_columns_match_singles(crs, dims, bs, CG, backend=backend)

    def test_batched_result_matches_sim_across_backends(self):
        crs, dims, bs = _system(batch=3)
        sim = solve(crs, bs, CG, grid_dims=dims, **KW)
        for backend in ("fast", "fused"):
            other = solve(crs, bs, CG, grid_dims=dims, backend=backend, **KW)
            assert np.array_equal(sim.x, other.x)
        kc = solve(crs, bs, CG, grid_dims=dims, backend="fused", **KW).kernel_counters
        assert kc is not None and kc["kernels"] > 0

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           batch=st.integers(min_value=2, max_value=5),
           backend=st.sampled_from(["sim", "fused"]))
    def test_property_batched_equals_single(self, seed, batch, backend):
        # Any RHS draw, any batch size, timed or kernel backend: batching
        # never changes a single bit of any column's trajectory.
        crs, dims, bs = _system(n=8, batch=batch, seed=seed)
        _assert_columns_match_singles(crs, dims, bs, CG, backend=backend)

    def test_batch_of_one_matches_classic_solve(self):
        crs, dims, bs = _system(batch=1)
        batched = solve(crs, bs, CG, grid_dims=dims, **KW)
        single = solve(crs, bs[0], CG, grid_dims=dims, **KW)
        # (1, n) input still reports the batched shape/metadata...
        assert batched.batch == 1 and batched.x.shape == (1, crs.n)
        # ...but the numerics and the schedule are the classic solve's.
        assert np.array_equal(batched.x[0], single.x)
        assert batched.cycles == single.cycles


class TestConvergenceMasking:
    def test_columns_freeze_at_their_own_iteration(self):
        # rng(42) RHS on poisson2d(10) stagger bicgstab convergence across
        # columns; each column must stop recording at its own iteration
        # while the program runs on until the slowest column finishes.
        crs, dims, bs = _system()
        batched = solve(crs, bs, BICGSTAB, grid_dims=dims, **KW)
        iters = [s.total_iterations for s in batched.batch_stats]
        assert len(set(iters)) > 1, "need staggered convergence to test masking"
        assert batched.stats.total_iterations == max(iters)
        for j, st_j in enumerate(batched.batch_stats):
            # The frozen column's history ends where its single solve ends —
            # no post-convergence drift leaked into x or the records.
            single = solve(crs, bs[j], BICGSTAB, grid_dims=dims, **KW)
            assert st_j.total_iterations == single.stats.total_iterations
            assert np.array_equal(batched.x[j], single.x)
            assert st_j.failure is None

    def test_aggregate_history_tracks_worst_column(self):
        crs, dims, bs = _system()
        batched = solve(crs, bs, CG, grid_dims=dims, **KW)
        for i, agg in enumerate(batched.stats.residuals):
            per_col = [s.residuals[i] for s in batched.batch_stats
                       if i < len(s.residuals)]
            assert per_col and agg >= max(per_col) * (1 - 1e-12)

    def test_max_iterations_classified_per_column(self):
        crs, dims, bs = _system()
        cfg = {"solver": "cg", "tol": 1e-12, "max_iterations": 3}
        batched = solve(crs, bs, cfg, grid_dims=dims, **KW)
        assert batched.failure == "max_iterations"
        for st_j in batched.batch_stats:
            assert st_j.failure == "max_iterations"


class TestExchangeAmortization:
    def test_one_exchange_per_iteration_independent_of_batch(self):
        # The tentpole acceptance bar: the batched loop executes exactly the
        # same halo-exchange schedule as a single-RHS solve — exchanges are
        # counted by the engine, and the counts must be equal whenever the
        # loop runs the same number of iterations.
        crs, dims, bs = _system()
        single = solve(crs, bs[0], CG, grid_dims=dims, **KW)
        batched = solve(crs, bs, CG, grid_dims=dims, **KW)
        # rng(42) columns all take the same iteration count under cg...
        assert batched.stats.total_iterations == single.stats.total_iterations
        # ...so the batched program must not add a single exchange phase.
        assert batched.engine.exchanges == single.engine.exchanges

    def test_exchange_count_flat_across_batch_sizes(self):
        crs, dims, bs = _system(batch=8)
        counts = {}
        for batch in (2, 4, 8):
            r = solve(crs, bs[:batch], CG, grid_dims=dims, **KW)
            counts[batch] = (r.stats.total_iterations, r.engine.exchanges)
        iters = {v[0] for v in counts.values()}
        assert len(iters) == 1, f"iteration counts diverged: {counts}"
        assert len({v[1] for v in counts.values()}) == 1, counts


class TestBatchedCaching:
    def test_batch_size_is_in_the_fingerprint(self):
        crs, dims, _ = _system()
        base = dict(grid_dims=dims, **KW)
        keys = {fingerprint_solve(crs, CG, batch=batch, **base)
                for batch in (1, 2, 4)}
        assert len(keys) == 3

    def test_batched_hit_replays_bit_identically(self):
        crs, dims, bs = _system()
        session = SolverSession(crs, CG, grid_dims=dims, **KW)
        cold = session.solve(bs)
        hit = session.solve(bs)
        assert session.stats()["hits"] == 1 and session.stats()["misses"] == 1
        assert np.array_equal(cold.x, hit.x)
        assert cold.cycles == hit.cycles
        for a, b in zip(cold.batch_stats, hit.batch_stats):
            # prepare() reset the per-RHS stats in place; each result keeps
            # a detached copy with the full history intact.
            assert a.residuals == b.residuals
            assert a.total_iterations == b.total_iterations
        assert cold.relative_residuals == hit.relative_residuals

    def test_batched_hit_with_new_rhs_matches_uncached(self):
        crs, dims, bs = _system()
        session = SolverSession(crs, CG, grid_dims=dims, **KW)
        session.solve(bs)
        bs2 = np.random.default_rng(7).standard_normal(bs.shape)
        hit = session.solve(bs2)
        ref = solve(crs, bs2, CG, grid_dims=dims, **KW)
        assert session.stats()["hits"] == 1
        assert np.array_equal(hit.x, ref.x)
        assert hit.cycles == ref.cycles

    def test_single_and_batched_share_a_session_without_collisions(self):
        crs, dims, bs = _system()
        session = SolverSession(crs, CG, grid_dims=dims, **KW)
        r1 = session.solve(bs[0])
        rb = session.solve(bs)
        # Different batch → different key → both compiled, no false hit.
        assert session.stats()["misses"] == 2
        assert np.array_equal(rb.x[0], r1.x)


class TestBatchedValidation:
    def test_unsupported_solver_rejected(self):
        crs, dims, bs = _system()
        with pytest.raises(ReproError, match="batched"):
            solve(crs, bs, {"solver": "gauss_seidel", "sweeps": 10},
                  grid_dims=dims, **KW)

    def test_unsupported_preconditioner_rejected(self):
        crs, dims, bs = _system()
        with pytest.raises(ReproError, match="batched"):
            solve(crs, bs, {"solver": "cg", "tol": 1e-6,
                            "preconditioner": {"solver": "ilu0"}},
                  grid_dims=dims, **KW)

    def test_mixed_precision_mpir_rejected(self):
        # MPIR's extended-precision RHS is outside the f32-only batched
        # path; the supports_batch gate catches it before allocation.
        crs, dims, bs = _system()
        with pytest.raises(ReproError, match="batched"):
            solve(crs, bs, {"solver": "mpir", "tol": 1e-6,
                            "inner": {"solver": "cg", "tol": 1e-4}},
                  grid_dims=dims, **KW)

    def test_faults_and_resilience_rejected(self):
        crs, dims, bs = _system()
        with pytest.raises(ReproError, match="fault"):
            solve(crs, bs, CG, grid_dims=dims, inject_faults="bitflip:p=0.1",
                  **KW)
        with pytest.raises(ReproError, match="resilience"):
            solve(crs, bs, CG, grid_dims=dims, resilience=True, **KW)

    def test_bad_shapes_rejected(self):
        crs, dims, bs = _system()
        with pytest.raises(ReproError, match="rows"):
            solve(crs, bs[:, :-1], CG, grid_dims=dims, **KW)
        with pytest.raises(ReproError, match="1-D"):
            solve(crs, bs[None], CG, grid_dims=dims, **KW)
        with pytest.raises(ReproError, match="x0"):
            solve(crs, bs, CG, grid_dims=dims, x0=bs[0], **KW)
