"""Tests for the preconditioned Conjugate Gradient solver."""

import numpy as np
import pytest

from repro.solvers import solve
from repro.sparse import poisson2d, poisson3d
from repro.sparse.suitesparse import af_shell_like


@pytest.fixture
def system():
    crs, dims = poisson2d(12)
    b = np.random.default_rng(8).standard_normal(crs.n)
    return crs, dims, b


class TestConjugateGradient:
    def test_converges(self, system):
        crs, dims, b = system
        res = solve(crs, b, {"solver": "cg", "tol": 1e-6}, grid_dims=dims, tiles_per_ipu=4)
        assert res.relative_residual < 1e-5
        np.testing.assert_allclose(
            res.x, np.linalg.solve(crs.to_scipy().toarray(), b), rtol=1e-2, atol=1e-3
        )

    def test_ilu_preconditioning_helps(self, system):
        crs, dims, b = system
        plain = solve(crs, b, {"solver": "cg", "tol": 1e-6}, grid_dims=dims, tiles_per_ipu=4)
        pre = solve(
            crs, b,
            {"solver": "cg", "tol": 1e-6, "preconditioner": {"solver": "ilu0"}},
            grid_dims=dims, tiles_per_ipu=4,
        )
        assert pre.iterations < plain.iterations

    def test_cheaper_per_iteration_than_bicgstab(self, system):
        # CG: 1 SpMV + 1 preconditioner per iteration; BiCGStab: 2 + 2.
        crs, dims, b = system
        cg = solve(
            crs, b, {"solver": "cg", "fixed_iterations": 10, "tol": 1e-30,
                      "preconditioner": {"solver": "ilu0"}},
            grid_dims=dims, tiles_per_ipu=4,
        )
        bi = solve(
            crs, b, {"solver": "bicgstab", "fixed_iterations": 10, "tol": 1e-30,
                      "preconditioner": {"solver": "ilu0"}},
            grid_dims=dims, tiles_per_ipu=4,
        )
        assert cg.cycles < bi.cycles

    def test_on_spd_benchmark_double(self):
        crs = af_shell_like(nx=12, ny=12, layers=3)
        b = np.random.default_rng(9).standard_normal(crs.n)
        res = solve(
            crs, b,
            {"solver": "cg", "tol": 1e-4, "max_iterations": 2000,
             "preconditioner": {"solver": "ilu0"}},
            tiles_per_ipu=4,
        )
        assert res.relative_residual < 1e-2

    def test_multigrid_preconditioned_cg(self):
        crs, dims = poisson3d(8)
        b = np.random.default_rng(10).standard_normal(crs.n)
        res = solve(
            crs, b,
            {"solver": "cg", "tol": 1e-6,
             # CG needs an SPD preconditioner -> symmetric GS smoothing.
             "preconditioner": {"solver": "multigrid", "grid_dims": dims,
                                 "cycles": 1,
                                 "smoother": {"solver": "gauss_seidel",
                                               "sweeps": 1,
                                               "direction": "symmetric"}}},
            grid_dims=dims, tiles_per_ipu=8,
        )
        assert res.relative_residual < 1e-5
        assert res.iterations < 15

    def test_history_recorded(self, system):
        crs, dims, b = system
        res = solve(crs, b, {"solver": "cg", "tol": 1e-6}, grid_dims=dims, tiles_per_ipu=4)
        assert len(res.stats.residuals) == res.iterations
        assert res.stats.residuals[-1] < res.stats.residuals[0]
