"""Concurrent access to the structure-keyed compile cache.

The serving runtime (``repro.serve``) shares one process-wide
:class:`~repro.solvers.ProgramCache` across a worker pool, so the LRU map
and its hit/miss/eviction counters must survive concurrent get/put/evict
traffic (docs/serving.md).  Entry *execution* stays serialized through
:attr:`~repro.solvers.CompiledSolve.lock` — also exercised here.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.solvers import CompiledSolve, ProgramCache, solve
from repro.sparse import poisson2d


def _dummy_entry(key: str) -> CompiledSolve:
    return CompiledSolve(key=key, ctx=None, solver=None, xvec=None,
                         bvec=None, device=None, compiled=None)


class TestCacheMapConcurrency:
    def test_hammered_lru_keeps_counters_and_capacity_consistent(self):
        """16 threads × mixed get/put over a tiny LRU: every get must count
        exactly one hit or miss, the map never exceeds capacity, and no
        operation raises (the pre-lock OrderedDict corrupted under this)."""
        cache = ProgramCache(capacity=4)
        threads, per_thread, keyspace = 16, 300, 12
        errors: list = []

        def worker(tid: int) -> None:
            rng = np.random.default_rng(tid)
            try:
                for i in range(per_thread):
                    key = f"k{rng.integers(keyspace)}"
                    if cache.get(key) is None and i % 2 == 0:
                        cache.put(key, _dummy_entry(key))
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        with ThreadPoolExecutor(max_workers=threads) as pool:
            list(pool.map(worker, range(threads)))

        assert not errors
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == threads * per_thread
        assert stats["size"] <= stats["capacity"] == 4
        assert len(cache) == stats["size"]

    def test_entry_lock_serializes_stateful_execution(self):
        """CompiledSolve.lock is a real mutex: two holders never overlap."""
        entry = _dummy_entry("k")
        inside, overlaps = [], []

        def use() -> None:
            with entry.lock:
                inside.append(None)
                if len(inside) > 1:
                    overlaps.append(True)
                threading.Event().wait(0.002)
                inside.pop()

        with ThreadPoolExecutor(max_workers=8) as pool:
            for _ in range(8):
                pool.submit(use)
        assert not overlaps


class TestConcurrentSolves:
    def test_parallel_solves_through_one_shared_cache_stay_bit_identical(self):
        """Four threads, four distinct structures, one shared cache: every
        concurrent result must equal its single-threaded reference bit for
        bit, and the counters must balance."""
        grids = (8, 9, 10, 11)
        systems = {}
        for g in grids:
            crs, dims = poisson2d(g)
            b = np.random.default_rng(g).standard_normal(crs.n)
            systems[g] = (crs, dims, b)
        reference = {
            g: solve(crs, b, "cg", grid_dims=dims)
            for g, (crs, dims, b) in systems.items()
        }

        cache = ProgramCache(capacity=8)
        rounds = 3

        def run(g: int):
            crs, dims, b = systems[g]
            return [
                solve(crs, b, "cg", grid_dims=dims, cache=cache)
                for _ in range(rounds)
            ]

        with ThreadPoolExecutor(max_workers=len(grids)) as pool:
            results = dict(zip(grids, pool.map(run, grids)))

        for g in grids:
            for res in results[g]:
                np.testing.assert_array_equal(res.x, reference[g].x)
                assert res.stats.residuals == reference[g].stats.residuals
                assert res.cycles == reference[g].cycles
        stats = cache.stats()
        assert stats["misses"] == len(grids)
        assert stats["hits"] == len(grids) * (rounds - 1)
