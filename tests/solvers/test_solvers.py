"""End-to-end solver tests: correctness, convergence, composition."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.machine import IPUDevice
from repro.solvers import (
    ILU0,
    PBiCGStab,
    build_solver,
    solve,
)
from repro.sparse import poisson2d
from repro.sparse.distribute import DistributedMatrix
from repro.sparse.suitesparse import g3_circuit_like
from repro.tensordsl import TensorContext


@pytest.fixture
def system():
    crs, dims = poisson2d(10)
    rng = np.random.default_rng(42)
    b = rng.standard_normal(crs.n)
    return crs, dims, b


def run_solver(crs, dims, b, config, tiles=4, **kw):
    return solve(crs, b, config, grid_dims=dims, tiles_per_ipu=tiles, **kw)


class TestBiCGStab:
    def test_converges_unpreconditioned(self, system):
        crs, dims, b = system
        res = run_solver(crs, dims, b, {"solver": "bicgstab", "tol": 1e-5})
        assert res.relative_residual < 1e-4
        assert 0 < res.iterations < 200
        np.testing.assert_allclose(
            res.x, np.linalg.solve(crs.to_scipy().toarray(), b), rtol=1e-2, atol=1e-3
        )

    def test_ilu_preconditioner_reduces_iterations(self, system):
        crs, dims, b = system
        plain = run_solver(crs, dims, b, {"solver": "bicgstab", "tol": 1e-5})
        pre = run_solver(
            crs, dims, b,
            {"solver": "bicgstab", "tol": 1e-5, "preconditioner": {"solver": "ilu0"}},
        )
        assert pre.relative_residual < 1e-4
        assert pre.iterations < plain.iterations

    def test_history_is_monotonic_overall(self, system):
        crs, dims, b = system
        res = run_solver(crs, dims, b, {"solver": "bicgstab", "tol": 1e-5})
        hist = res.stats.residuals
        assert len(hist) == res.iterations
        assert hist[-1] < hist[0] / 100

    def test_f32_stall_near_1e7(self, system):
        # The Fig. 9/10 baseline: without (MP)IR a float32 solver cannot go
        # far below ~1e-6 relative residual.
        crs, dims, b = system
        res = run_solver(
            crs, dims, b,
            {"solver": "bicgstab", "tol": 1e-13, "max_iterations": 300,
             "preconditioner": {"solver": "ilu0"}},
        )
        assert 1e-8 < res.relative_residual < 1e-5

    def test_initial_guess_used(self, system):
        crs, dims, b = system
        x_exact = np.linalg.solve(crs.to_scipy().toarray(), b)
        res = run_solver(
            crs, dims, b, {"solver": "bicgstab", "tol": 1e-5}, x0=x_exact
        )
        assert res.iterations <= 1

    def test_fixed_iterations_mode(self, system):
        crs, dims, b = system
        res = run_solver(
            crs, dims, b, {"solver": "bicgstab", "fixed_iterations": 5, "tol": 1e-30}
        )
        assert res.iterations == 5

    def test_many_tiles(self, system):
        crs, dims, b = system
        res = run_solver(crs, dims, b, {"solver": "bicgstab", "tol": 1e-5}, tiles=25)
        assert res.relative_residual < 1e-4


class TestStationarySolvers:
    def test_gauss_seidel_converges(self, system):
        crs, dims, b = system
        res = run_solver(crs, dims, b, {"solver": "gauss_seidel", "sweeps": 300})
        assert res.relative_residual < 1e-3

    def test_gauss_seidel_single_tile_matches_classic(self):
        # On one tile (no halo), our GS must equal textbook Gauss-Seidel.
        crs, dims = poisson2d(5)
        b = np.arange(crs.n, dtype=np.float64)
        res = solve(crs, b, {"solver": "gauss_seidel", "sweeps": 3},
                    grid_dims=dims, tiles_per_ipu=1)
        a = crs.to_scipy().toarray()
        x = np.zeros(crs.n, dtype=np.float32)
        for _ in range(3):
            for i in range(crs.n):
                x[i] = np.float32(
                    (np.float32(b[i]) - np.float32(a[i] @ x) + np.float32(a[i, i]) * x[i])
                    / np.float32(a[i, i])
                )
        np.testing.assert_allclose(res.x, x, rtol=1e-4, atol=1e-5)

    def test_jacobi_converges(self, system):
        crs, dims, b = system
        res = run_solver(crs, dims, b, {"solver": "jacobi", "sweeps": 400, "omega": 0.9})
        assert res.relative_residual < 1e-2

    def test_jacobi_damping_matters(self, system):
        crs, dims, b = system
        good = run_solver(crs, dims, b, {"solver": "jacobi", "sweeps": 100, "omega": 0.9})
        bad = run_solver(crs, dims, b, {"solver": "jacobi", "sweeps": 100, "omega": 0.3})
        assert good.relative_residual < bad.relative_residual


class TestILU:
    def test_ilu0_exact_for_triangular_pattern(self):
        # For a matrix whose pattern admits exact LU (tridiagonal), ILU(0)
        # IS the LU factorization: one application solves the system.
        a = sp.diags([-1.0, 4.0, -1.0], [-1, 0, 1], shape=(20, 20), format="csr")
        from repro.sparse.crs import ModifiedCRS

        crs = ModifiedCRS.from_scipy(a)
        b = np.random.default_rng(0).standard_normal(20)
        res = solve(crs, b, {"solver": "ilu0"}, tiles_per_ipu=1)
        np.testing.assert_allclose(res.x, sp.linalg.spsolve(a.tocsc(), b), rtol=1e-4, atol=1e-4)

    def test_ilu0_as_direct_preconditioner_application(self, system):
        crs, dims, b = system
        # A single ILU application is a rough solve: residual drops below 1.
        res = run_solver(crs, dims, b, {"solver": "ilu0"}, tiles=1)
        assert res.relative_residual < 0.7

    def test_dilu_preconditioner_helps(self, system):
        crs, dims, b = system
        plain = run_solver(crs, dims, b, {"solver": "bicgstab", "tol": 1e-5})
        dilu = run_solver(
            crs, dims, b,
            {"solver": "bicgstab", "tol": 1e-5, "preconditioner": {"solver": "dilu"}},
        )
        assert dilu.relative_residual < 1e-4
        assert dilu.iterations <= plain.iterations

    def test_block_local_ilu_weakens_with_more_tiles(self, system):
        # Sec. VI-D: decomposing across many tiles hurts ILU effectiveness
        # because halo values are disregarded.
        crs, dims, b = system
        cfg = {"solver": "bicgstab", "tol": 1e-5, "preconditioner": {"solver": "ilu0"}}
        one = run_solver(crs, dims, b, cfg, tiles=1)
        many = run_solver(crs, dims, b, cfg, tiles=25)
        assert one.iterations <= many.iterations

    def test_ilu_factor_charged_once(self, system):
        crs, dims, b = system
        res = run_solver(
            crs, dims, b,
            {"solver": "bicgstab", "tol": 1e-5, "preconditioner": {"solver": "ilu0"}},
        )
        prof = res.engine.device.profiler
        assert prof.category("ilu_factor") > 0
        assert prof.category("ilu_solve") > prof.category("ilu_factor")


class TestComposition:
    def test_gs_as_preconditioner(self, system):
        crs, dims, b = system
        res = run_solver(
            crs, dims, b,
            {"solver": "bicgstab", "tol": 1e-5,
             "preconditioner": {"solver": "gauss_seidel", "sweeps": 2}},
        )
        assert res.relative_residual < 1e-4

    def test_nested_bicgstab(self, system):
        # Any solver can precondition any other — including BiCGStab itself.
        crs, dims, b = system
        res = run_solver(
            crs, dims, b,
            {"solver": "bicgstab", "tol": 1e-5,
             "preconditioner": {"solver": "bicgstab", "fixed_iterations": 2,
                                 "record_history": False}},
        )
        assert res.relative_residual < 1e-4

    def test_programmatic_composition(self, system):
        crs, dims, b = system
        ctx = TensorContext(IPUDevice(tiles_per_ipu=4))
        A = DistributedMatrix(ctx, crs, grid_dims=dims)
        solver = PBiCGStab(A, preconditioner=ILU0(A), tol=1e-5)
        bv = A.vector(data=b)
        xv = A.vector()
        solver.solve_into(xv, bv)
        ctx.run()
        resid = np.linalg.norm(crs.spmv(xv.read_global()) - b) / np.linalg.norm(b)
        assert resid < 1e-4


class TestConfig:
    def test_json_string_config(self, system):
        crs, dims, b = system
        res = run_solver(
            crs, dims, b,
            '{"solver": "bicgstab", "tol": 1e-5, "preconditioner": {"solver": "ilu0"}}',
        )
        assert res.relative_residual < 1e-4

    def test_json_file_config(self, system, tmp_path):
        crs, dims, b = system
        cfg = tmp_path / "solver.json"
        cfg.write_text('{"solver": "jacobi", "sweeps": 50}')
        res = run_solver(crs, dims, b, cfg)
        assert res.relative_residual < 1.0

    def test_unknown_solver_rejected(self, system):
        crs, dims, b = system
        with pytest.raises(ValueError, match="unknown solver"):
            run_solver(crs, dims, b, {"solver": "amg"})

    def test_missing_solver_key_rejected(self, system):
        crs, dims, b = system
        with pytest.raises(ValueError, match="'solver' key"):
            run_solver(crs, dims, b, {"tol": 1e-5})

    def test_mpir_requires_inner(self, system):
        crs, dims, b = system
        with pytest.raises(ValueError, match="inner"):
            run_solver(crs, dims, b, {"solver": "mpir"})

    def test_build_solver_nests(self, system):
        crs, dims, b = system
        ctx = TensorContext(IPUDevice(tiles_per_ipu=4))
        A = DistributedMatrix(ctx, crs, grid_dims=dims)
        s = build_solver(A, {"solver": "mpir", "inner": {
            "solver": "bicgstab", "preconditioner": {"solver": "dilu"}}})
        assert s.name == "mpir"
        assert s.inner.name == "bicgstab"
        assert s.inner.preconditioner.name == "dilu"


class TestIrregularMatrix:
    def test_solve_general_graph_partition(self):
        crs = g3_circuit_like(grid=12, seed=2)
        rng = np.random.default_rng(1)
        b = rng.standard_normal(crs.n)
        res = solve(
            crs, b,
            {"solver": "bicgstab", "tol": 1e-5, "preconditioner": {"solver": "ilu0"}},
            tiles_per_ipu=6,
        )
        # The circuit Laplacian is near-singular (tiny 1e-4 shift): with a
        # float32 working precision the attainable residual floor is higher
        # than on the Poisson systems.
        assert res.relative_residual < 5e-3


class TestDeterminism:
    def test_cycle_deterministic(self, system):
        crs, dims, b = system
        cfg = {"solver": "bicgstab", "tol": 1e-5, "preconditioner": {"solver": "ilu0"}}
        r1 = run_solver(crs, dims, b, cfg)
        r2 = run_solver(crs, dims, b, cfg)
        assert r1.cycles == r2.cycles
        np.testing.assert_array_equal(r1.x, r2.x)
