"""Tests for geometric multigrid and the rectangular transfer operators."""

import numpy as np
import pytest

from repro.machine import IPUDevice
from repro.solvers import solve
from repro.solvers.multigrid import build_transfer, interpolation_1d
from repro.sparse import poisson2d, poisson3d
from repro.sparse.distribute import DistributedMatrix
from repro.sparse.rectop import DistributedRectOp
from repro.tensordsl import TensorContext


class TestTransferConstruction:
    def test_interpolation_1d_partition_of_unity(self):
        p = interpolation_1d(9, 5)
        np.testing.assert_allclose(np.asarray(p.sum(axis=1)).ravel(), 1.0)

    def test_interpolation_exact_on_coincident_points(self):
        p = interpolation_1d(9, 5)
        coarse = np.array([1.0, 3.0, 5.0, 7.0, 9.0])
        fine = p @ coarse
        np.testing.assert_allclose(fine[::2], coarse)  # even points coincide
        np.testing.assert_allclose(fine[1:-1:2], 0.5 * (coarse[:-1] + coarse[1:]))

    def test_build_transfer_2d(self):
        p, coarse = build_transfer((8, 8))
        assert coarse == (4, 4)
        assert p.shape == (64, 16)
        # Interpolating a linear function is exact away from boundaries.
        # Row convention x + nx*y: build with matching order.
        coarse_vals = np.array([2 * x + y for y in range(4) for x in range(4)], dtype=float)
        fine = p @ coarse_vals
        exact = np.array([x + 0.5 * y for y in range(8) for x in range(8)])
        np.testing.assert_allclose(fine[: 7 * 8].reshape(7, 8)[:, :7],
                                   exact[: 7 * 8].reshape(7, 8)[:, :7])

    def test_galerkin_coarse_is_spd(self):
        crs, dims = poisson2d(8)
        p, _ = build_transfer(dims)
        r = (p.T * 0.25).tocsr()
        a_c = (r @ crs.to_scipy() @ p).toarray()
        w = np.linalg.eigvalsh(a_c)
        assert w.min() > 0


class TestDistributedRectOp:
    @pytest.mark.parametrize("tiles", [1, 4, 9])
    def test_matches_host_apply(self, tiles):
        crs_f, dims_f = poisson2d(8)
        p, dims_c = build_transfer(dims_f)
        r = (p.T * 0.25).tocsr()
        from repro.sparse.crs import ModifiedCRS

        crs_c = ModifiedCRS.from_scipy(r @ crs_f.to_scipy() @ p)
        ctx = TensorContext(IPUDevice(tiles_per_ipu=tiles))
        A_f = DistributedMatrix(ctx, crs_f, grid_dims=dims_f)
        A_c = DistributedMatrix(ctx, crs_c, grid_dims=dims_c, name="Ac")
        R = DistributedRectOp(ctx, r, A_c, A_f)
        P = DistributedRectOp(ctx, p, A_f, A_c)

        rng = np.random.default_rng(2)
        xf = A_f.vector(data=rng.standard_normal(crs_f.n))
        yc = A_c.vector()
        xc = A_c.vector(data=rng.standard_normal(crs_c.n))
        yf = A_f.vector()
        R.apply(xf, yc)
        P.apply(xc, yf)
        ctx.run()
        np.testing.assert_allclose(yc.read_global(), r @ xf.read_global(), rtol=1e-5, atol=1e-5)
        np.testing.assert_allclose(yf.read_global(), p @ xc.read_global(), rtol=1e-5, atol=1e-5)

    def test_shape_mismatch_rejected(self):
        crs, dims = poisson2d(6)
        ctx = TensorContext(IPUDevice(tiles_per_ipu=4))
        A = DistributedMatrix(ctx, crs, grid_dims=dims)
        import scipy.sparse as sp

        with pytest.raises(ValueError, match="shape"):
            DistributedRectOp(ctx, sp.identity(10).tocsr(), A, A)

    def test_mismatched_vectors_rejected(self):
        crs, dims = poisson2d(6)
        ctx = TensorContext(IPUDevice(tiles_per_ipu=4))
        A = DistributedMatrix(ctx, crs, grid_dims=dims)
        B = DistributedMatrix(ctx, crs, grid_dims=dims, name="B")
        import scipy.sparse as sp

        op = DistributedRectOp(ctx, sp.identity(crs.n).tocsr(), A, A)
        with pytest.raises(ValueError, match="distributions"):
            op.apply(B.vector(), A.vector())

    def test_transfer_category_charged(self):
        crs, dims = poisson2d(8)
        p, dims_c = build_transfer(dims)
        from repro.sparse.crs import ModifiedCRS

        crs_c = ModifiedCRS.from_scipy((p.T * 0.25) @ crs.to_scipy() @ p)
        ctx = TensorContext(IPUDevice(tiles_per_ipu=4))
        A_f = DistributedMatrix(ctx, crs, grid_dims=dims)
        A_c = DistributedMatrix(ctx, crs_c, grid_dims=dims_c, name="Ac")
        R = DistributedRectOp(ctx, (p.T * 0.25).tocsr(), A_c, A_f)
        R.apply(A_f.vector(), A_c.vector())
        ctx.run()
        assert ctx.device.profiler.category("transfer") > 0


class TestMultigridSolver:
    def test_converges_2d(self):
        crs, dims = poisson2d(32)
        b = np.random.default_rng(0).standard_normal(crs.n)
        res = solve(crs, b, {"solver": "multigrid", "grid_dims": dims, "cycles": 12,
                             "pre_smooth": 2, "post_smooth": 2},
                    grid_dims=dims, tiles_per_ipu=16)
        assert res.relative_residual < 1e-5
        # Grid-independent-ish convergence: a contraction per cycle.
        h = res.stats.residuals
        assert h[-1] < h[0] * 1e-4

    def test_converges_3d(self):
        crs, dims = poisson3d(12)
        b = np.random.default_rng(1).standard_normal(crs.n)
        res = solve(crs, b, {"solver": "multigrid", "grid_dims": dims, "cycles": 10,
                             "pre_smooth": 2, "post_smooth": 2},
                    grid_dims=dims, tiles_per_ipu=8)
        assert res.relative_residual < 1e-6

    def test_beats_smoother_alone(self):
        crs, dims = poisson2d(32)
        b = np.random.default_rng(3).standard_normal(crs.n)
        # Equal smoothing work: 10 V-cycles at 2+2 sweeps ~ 40 GS sweeps.
        mg = solve(crs, b, {"solver": "multigrid", "grid_dims": dims, "cycles": 10,
                            "pre_smooth": 2, "post_smooth": 2},
                   grid_dims=dims, tiles_per_ipu=16)
        gs = solve(crs, b, {"solver": "gauss_seidel", "sweeps": 40},
                   grid_dims=dims, tiles_per_ipu=16)
        assert mg.relative_residual < gs.relative_residual / 100

    def test_as_preconditioner(self):
        crs, dims = poisson2d(32)
        b = np.random.default_rng(4).standard_normal(crs.n)
        plain = solve(crs, b, {"solver": "bicgstab", "tol": 1e-6,
                               "preconditioner": {"solver": "ilu0"}},
                      grid_dims=dims, tiles_per_ipu=16)
        mg = solve(crs, b, {"solver": "bicgstab", "tol": 1e-6,
                            "preconditioner": {"solver": "multigrid",
                                                "grid_dims": dims, "cycles": 1}},
                   grid_dims=dims, tiles_per_ipu=16)
        assert mg.relative_residual < 1e-5
        assert mg.iterations < plain.iterations

    def test_hierarchy_depth(self):
        from repro.solvers.multigrid import Multigrid

        crs, dims = poisson2d(32)
        ctx = TensorContext(IPUDevice(tiles_per_ipu=4))
        A = DistributedMatrix(ctx, crs, grid_dims=dims)
        mg = Multigrid(A, grid_dims=dims, coarsest_size=20)
        mg.setup()
        # 32x32 -> 16x16 -> 8x8; the next grid (4x4 = 16 rows) would fall
        # below coarsest_size, so 8x8 is solved directly.
        assert mg.num_levels == 3
        sizes = [lv["A"].n for lv in mg.hierarchy]
        assert sizes == [1024, 256, 64]

    def test_levels_cap_respected(self):
        from repro.solvers.multigrid import Multigrid

        crs, dims = poisson2d(32)
        ctx = TensorContext(IPUDevice(tiles_per_ipu=4))
        A = DistributedMatrix(ctx, crs, grid_dims=dims)
        mg = Multigrid(A, grid_dims=dims, levels=2)
        mg.setup()
        assert mg.num_levels == 2

    def test_bad_dims_rejected(self):
        crs, dims = poisson2d(8)
        b = np.ones(crs.n)
        with pytest.raises(ValueError, match="grid_dims"):
            solve(crs, b, {"solver": "multigrid", "grid_dims": [5, 5]},
                  grid_dims=dims, tiles_per_ipu=4)
