"""TelemetryReport "faults & recovery" section."""

import pytest

from repro.solvers import solve
from repro.sparse import poisson3d
from repro.telemetry import TelemetryReport, Tracer

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


def _faulty_traced_solve():
    crs, dims = poisson3d(8)
    import numpy as np

    b = np.random.default_rng(3).standard_normal(crs.n)
    tracer = Tracer()
    result = solve(crs, b, {"solver": "cg", "tol": 1e-6},
                   num_ipus=2, tiles_per_ipu=16, grid_dims=dims,
                   trace=tracer,
                   inject_faults="seed=7;bitflip:p=0.03,where=exchange",
                   resilience=True)
    return result, tracer


class TestFaultsSection:
    def test_report_aggregates_fault_events(self):
        result, tracer = _faulty_traced_solve()
        report = tracer.report()
        f = report.faults
        assert f, "faults section missing from a faulty traced run"
        assert f["injections"] == result.resilience.faults_injected
        assert f["by_kind"].get("bitflip", 0) == f["injections"]
        assert f["rollbacks"] == result.resilience.rollbacks
        assert f["outcome"] == result.resilience.outcome
        assert f["extra_iterations"] == result.resilience.extra_iterations

    def test_render_shows_faults_and_recovery(self):
        _, tracer = _faulty_traced_solve()
        text = tracer.report().render()
        assert "faults & recovery:" in text
        assert "injections:" in text and "bitflip=" in text
        assert "rollbacks:" in text
        assert "extra iterations paid:" in text
        assert "outcome: recovered" in text

    def test_clean_trace_has_no_faults_section(self):
        import numpy as np

        crs, dims = poisson3d(8)
        b = np.random.default_rng(3).standard_normal(crs.n)
        tracer = Tracer()
        solve(crs, b, {"solver": "cg", "tol": 1e-6}, tiles_per_ipu=8,
              grid_dims=dims, trace=tracer)
        report = tracer.report()
        assert report.faults == {}
        assert "faults & recovery" not in report.render()

    def test_resilience_instant_round_trips_through_chrome_export(self, tmp_path):
        from repro.telemetry import load_trace, validate_chrome_trace

        _, tracer = _faulty_traced_solve()
        path = tmp_path / "t.json"
        obj = tracer.to_chrome(path)
        assert validate_chrome_trace(obj) == []
        events, meta = load_trace(path)
        report = TelemetryReport.from_events(events, meta=meta)
        assert report.faults["injections"] > 0
        assert report.faults["outcome"] == "recovered"
