"""MetricsRegistry: instrument semantics and both snapshot exporters."""

import json
import re

import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)

# The Prometheus-text sample grammar the CLI parses back.
SAMPLE = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$")
LABEL = re.compile(r'(\w+)="([^"]*)"')


def parse_prometheus(text: str) -> dict:
    """name -> {sorted label tuple -> float} for every non-comment sample."""
    out: dict = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        m = SAMPLE.match(line)
        assert m is not None, f"unparseable exposition line: {line!r}"
        name, labels, value = m.groups()
        key = tuple(sorted(LABEL.findall(labels or "")))
        out.setdefault(name, {})[key] = float(value)
    return out


class TestInstruments:
    def test_counter_accumulates_per_label_set(self):
        c = Counter("launches")
        c.inc()
        c.inc(2, name="k1")
        c.inc(3, name="k1")
        assert c.value() == 1
        assert c.value(name="k1") == 5
        assert c.value(name="k2") == 0

    def test_counter_rejects_decrease(self):
        c = Counter("launches")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_gauge_keeps_last_value(self):
        g = Gauge("residual")
        g.set(1.0)
        g.set(1e-6)
        assert g.value() == 1e-6

    def test_histogram_buckets_and_snapshot(self):
        h = Histogram("wall", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        cum, total, n = h.snapshot()
        # cumulative: <=1, <=10, <=100, +Inf
        assert cum == [1, 2, 3, 4]
        assert total == pytest.approx(555.5)
        assert n == 4

    def test_histogram_empty_label_set_snapshot(self):
        h = Histogram("wall", buckets=(1.0,))
        cum, total, n = h.snapshot(name="missing")
        assert cum == [0, 0] and total == 0.0 and n == 0

    def test_log_buckets_geometric(self):
        edges = log_buckets(1e-3, 1.0, per_decade=1)
        assert edges[0] == pytest.approx(1e-3)
        assert edges[-1] >= 1.0
        ratios = [b / a for a, b in zip(edges, edges[1:])]
        assert all(r == pytest.approx(10.0) for r in ratios)
        with pytest.raises(ValueError):
            log_buckets(0, 1)


class TestRegistry:
    def test_get_or_create_and_kind_mismatch(self):
        reg = MetricsRegistry()
        c = reg.counter("a", "help a")
        assert reg.counter("a") is c
        assert len(reg) == 1
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("a")

    def test_prometheus_text_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("repro_kernel_wall_ns_total", "wall ns").inc(
            1500, name="k1", kind="kernel"
        )
        reg.counter("repro_kernel_wall_ns_total").inc(500, name="k0", kind="kernel")
        reg.gauge("repro_solve_iterations").set(42)
        reg.histogram("repro_kernel_wall_seconds", buckets=(1e-6, 1e-3, 1.0)).observe(
            2e-4, name="k1"
        )
        text = reg.to_prometheus()
        assert "# TYPE repro_kernel_wall_ns_total counter" in text
        assert "# TYPE repro_kernel_wall_seconds histogram" in text
        assert "# HELP repro_kernel_wall_ns_total wall ns" in text

        samples = parse_prometheus(text)
        key = (("kind", "kernel"), ("name", "k1"))
        assert samples["repro_kernel_wall_ns_total"][key] == 1500
        assert samples["repro_solve_iterations"][()] == 42
        # histogram series: per-edge _bucket + +Inf + _sum + _count
        buckets = samples["repro_kernel_wall_seconds_bucket"]
        assert buckets[(("le", "+Inf"), ("name", "k1"))] == 1
        assert buckets[(("le", "0.001"), ("name", "k1"))] == 1
        assert buckets[(("le", "1e-06"), ("name", "k1"))] == 0
        assert samples["repro_kernel_wall_seconds_count"][(("name", "k1"),)] == 1
        assert samples["repro_kernel_wall_seconds_sum"][(("name", "k1"),)] == (
            pytest.approx(2e-4)
        )

    def test_json_snapshot_schema(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2, name="x")
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        data = json.loads(json.dumps(reg.to_json()))
        assert data["c"]["kind"] == "counter"
        assert data["c"]["series"] == [{"labels": {"name": "x"}, "value": 2}]
        assert data["h"]["buckets"] == [1.0]
        [series] = data["h"]["series"]
        assert series["counts"] == [1, 0] and series["count"] == 1

    def test_write_picks_format_by_suffix(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        jpath, ppath = tmp_path / "m.json", tmp_path / "m.prom"
        reg.write(jpath)
        reg.write(ppath)
        assert json.loads(jpath.read_text())["c"]["kind"] == "counter"
        assert ppath.read_text().startswith("# TYPE c counter")
