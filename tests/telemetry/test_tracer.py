"""Tracer unit tests + the tracing-is-observational contract.

The load-bearing guarantee (ISSUE acceptance): a traced run is bit-identical
— in tensors *and* cycles — to an untraced one, and with no tracer attached
the backends emit zero events through code paths identical to the
pre-telemetry runtime.
"""

import numpy as np
import pytest

from repro.graph.passes.plans import ComputePlan, ExchangePlan, TilePlan
from repro.machine import IPUDevice
from repro.machine.fabric import ExchangePhase, Transfer
from repro.telemetry import CounterEvent, InstantEvent, SpanEvent, Tracer
from repro.telemetry.tracer import TILE_DETAIL_LIMIT


def compute_plan(makespans, name="cs_test", category="spmv"):
    tiles = tuple(TilePlan(t, (), m) for t, m in enumerate(makespans))
    return ComputePlan(name=name, category=category, tiles=tiles,
                       dispatch=(), worst_tile=max(makespans, default=0))


def exchange_plan(transfers=(), name="exchange", local=0):
    return ExchangePlan(name=name, ops=(), transfers=tuple(transfers),
                        local_cycles=local, vectorized=True)


class TestTracerPrimitives:
    def test_span_counter_instant(self):
        tr = Tracer()
        tr.span("s", "scope", 10, 5, {"k": 1})
        tr.counter("c", {"v": 2.0}, ts=12)
        tr.instant("i", "memory", {"x": 3}, ts=15)
        assert len(tr) == 3
        span, counter, instant = tr.events
        assert isinstance(span, SpanEvent) and span.dur == 5
        assert isinstance(counter, CounterEvent) and counter.values == {"v": 2.0}
        assert isinstance(instant, InstantEvent) and instant.ts == 15

    def test_scope_measures_device_clock(self):
        dev = IPUDevice(tiles_per_ipu=2)
        tr = Tracer()
        tr.bind(dev)
        with tr.scope("solve"):
            dev.profiler.record("x", 100)
        (ev,) = tr.events
        assert ev.name == "solve" and ev.cat == "scope"
        assert (ev.start, ev.dur) == (0, 100)

    def test_bind_captures_meta(self):
        tr = Tracer()
        tr.bind(IPUDevice(num_ipus=2, tiles_per_ipu=4))
        assert tr.meta["num_tiles"] == 8
        assert tr.meta["clock_hz"] > 0


class TestComputePhaseHook:
    def test_imbalance_and_per_tile_makespans(self):
        tr = Tracer()
        tr.compute_phase(compute_plan([100, 50, 50]), start=0, cycles=164, sync_cycles=64)
        span = next(e for e in tr.events if isinstance(e, SpanEvent))
        assert span.cat == "compute" and span.name == "cs_test"
        assert span.args["imbalance"] == pytest.approx(100 / (200 / 3))
        assert span.args["tile_makespans"] == {0: 100, 1: 50, 2: 50}
        counter = next(e for e in tr.events if isinstance(e, CounterEvent))
        assert counter.name == "imbalance"

    def test_many_tiles_summarized(self):
        tr = Tracer()
        tr.compute_phase(compute_plan([10] * (TILE_DETAIL_LIMIT + 1)),
                         start=0, cycles=74, sync_cycles=64)
        span = tr.events[0]
        assert "tile_makespans" not in span.args
        assert span.args["tile_makespans_summary"]["max"] == 10

    def test_tile_busy_accumulates_across_phases(self):
        dev = IPUDevice(tiles_per_ipu=2)
        tr = Tracer()
        tr.bind(dev)
        tr.compute_phase(compute_plan([10, 30]), 0, 94, 64)
        tr.compute_phase(compute_plan([20, 0]), 94, 84, 64)
        tr.finalize()
        busy = next(e for e in tr.events
                    if isinstance(e, InstantEvent) and e.name == "tile_busy")
        assert busy.args["per_tile_cycles"] == {0: 30, 1: 30}


class TestExchangePhaseHook:
    def test_volume_and_congestion(self):
        dev = IPUDevice(tiles_per_ipu=4)
        tr = Tracer()
        tr.bind(dev)
        # One hot sender streaming 800 B while three others send 0: the
        # fabric hotspot shows up as congestion > 1.
        phase = dev.fabric.run([Transfer(0, (1,), 400), Transfer(0, (2,), 400)])
        plan = exchange_plan([Transfer(0, (1,), 400), Transfer(0, (2,), 400)])
        tr.exchange_phase(plan, phase, start=0, cycles=phase.cycles)
        span = tr.events[0]
        assert span.cat == "exchange"
        assert span.args["sent_bytes"] == 800
        assert span.args["transfers"] == 2 and span.args["senders"] == 1
        assert span.args["congestion"] == pytest.approx(1.0)
        balanced = dev.fabric.run([Transfer(0, (1,), 400), Transfer(2, (3,), 400)])
        tr.exchange_phase(
            exchange_plan([Transfer(0, (1,), 400), Transfer(2, (3,), 400)]),
            balanced, start=phase.cycles, cycles=balanced.cycles)
        assert tr.events[2].args["congestion"] == pytest.approx(1.0)

    def test_empty_exchange(self):
        tr = Tracer()
        tr.exchange_phase(exchange_plan(), ExchangePhase(), start=5, cycles=0)
        assert tr.events[0].args["total_bytes"] == 0
        assert tr.events[0].args["congestion"] == 1.0


class TestFinalize:
    def test_sram_peaks_emitted_once(self):
        dev = IPUDevice(tiles_per_ipu=2)
        dev.tiles[0].alloc("a", np.zeros(8, dtype=np.float32))
        tr = Tracer()
        tr.bind(dev)
        tr.finalize()
        tr.finalize()  # idempotent
        sram = [e for e in tr.events
                if isinstance(e, InstantEvent) and e.name == "sram_peak"]
        assert len(sram) == 1
        assert sram[0].args["per_tile_bytes"] == {0: 32, 1: 0}
        assert sram[0].args["capacity_bytes"] == dev.spec.sram_per_tile

    def test_peak_survives_free(self):
        dev = IPUDevice(tiles_per_ipu=1)
        t = dev.tiles[0]
        t.alloc("a", np.zeros(16, dtype=np.float32))
        t.free("a")
        assert t.bytes_used == 0 and t.bytes_peak == 64
        assert dev.sram_report()["max_tile_peak_bytes"] == 64
        assert dev.sram_report()["max_tile_bytes"] == 0


class TestConvergence:
    def test_residual_counters_from_stats(self):
        from repro.solvers.base import SolveStats

        stats = SolveStats()
        stats.record(1, 0.5, cycles=100)
        stats.record(2, 0.05, cycles=200)
        assert stats.residual_series() == [(100, 1, 0.5), (200, 2, 0.05)]
        tr = Tracer()
        tr.convergence(stats)
        residuals = [e for e in tr.events
                     if isinstance(e, CounterEvent) and e.name == "residual"]
        assert [e.ts for e in residuals] == [100, 200]
        assert residuals[1].values["relative_residual"] == 0.05
        assert residuals[1].values["log10_residual"] == pytest.approx(-1.30103)


class TestTracingIsObservational:
    """ISSUE acceptance: tracing on/off changes nothing but the event list."""

    def _solve(self, trace):
        from repro.solvers import solve
        from repro.sparse import poisson2d

        crs, dims = poisson2d(8)
        b = np.ones(64)
        return solve(crs, b, "cg", tiles_per_ipu=4, grid_dims=dims, trace=trace)

    def test_traced_run_bit_identical_to_untraced(self):
        off = self._solve(trace=None)
        on = self._solve(trace=True)
        np.testing.assert_array_equal(off.x, on.x)
        assert off.cycles == on.cycles
        assert off.profile == on.profile
        assert off.stats.residuals == on.stats.residuals
        assert off.telemetry is None
        assert len(on.telemetry) > 0

    def test_disabled_tracer_means_zero_events(self):
        result = self._solve(trace=None)
        assert result.telemetry is None
        assert result.engine.tracer is None
        assert result.engine.backend.tracer is None

    def test_solve_stats_carry_cycles(self):
        result = self._solve(trace=None)
        cycles = result.stats.cycles
        assert len(cycles) == len(result.stats.residuals) > 0
        assert all(a < b for a, b in zip(cycles, cycles[1:]))
        assert cycles[-1] <= result.cycles

    def test_fast_backend_rejects_tracer(self):
        from repro.solvers import solve
        from repro.sparse import poisson2d

        crs, dims = poisson2d(8)
        with pytest.raises(ValueError, match="sim"):
            solve(crs, np.ones(64), "cg", tiles_per_ipu=4, grid_dims=dims,
                  backend="fast", trace=True)

    def test_trace_path_writes_chrome_file(self, tmp_path):
        import json

        from repro.telemetry import validate_chrome_trace

        out = tmp_path / "t.json"
        result = self._solve(trace=out)
        obj = json.loads(out.read_text())
        assert validate_chrome_trace(obj) == []
        assert result.telemetry is not None

    def test_existing_tracer_instance_is_used(self):
        tr = Tracer()
        result = self._solve(trace=tr)
        assert result.telemetry is tr
        assert len(tr) > 0
