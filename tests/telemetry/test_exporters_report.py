"""Exporter round-trips, Chrome-trace schema validation, and report math."""

import json

import numpy as np
import pytest

from repro.telemetry import (
    CounterEvent,
    InstantEvent,
    SpanEvent,
    TelemetryReport,
    chrome_trace,
    load_trace,
    validate_chrome_trace,
    write_chrome,
    write_ndjson,
)
from repro.telemetry.report import IMBALANCE_BUCKETS

CLOCK_HZ = 1.33e9
META = {"num_ipus": 1, "tiles_per_ipu": 4, "num_tiles": 4, "clock_hz": CLOCK_HZ}


def sample_events():
    return [
        SpanEvent("solve:cg", "scope", 0, 1000, {}),
        SpanEvent("cs_spmv", "compute", 0, 400,
                  {"category": "spmv", "imbalance": 1.2, "tiles": 4}),
        CounterEvent("imbalance", 0, {"worst/mean": 1.2}),
        SpanEvent("exchange", "exchange", 400, 300,
                  {"total_bytes": 800, "inter_ipu": False, "congestion": 1.5}),
        SpanEvent("cs_dot", "compute", 700, 100,
                  {"category": "reduce", "imbalance": 1.0, "tiles": 4}),
        SpanEvent("control", "control", 800, 50, {}),
        CounterEvent("residual", 850, {"relative_residual": 1e-3,
                                       "log10_residual": -3.0}),
        InstantEvent("sram_peak", "memory", 1000,
                     {"per_tile_bytes": {0: 64}, "max_bytes": 64,
                      "capacity_bytes": 624 * 1024}),
    ]


class TestChromeExport:
    def test_schema_valid_and_scaled(self):
        obj = chrome_trace(sample_events(), meta=META)
        assert validate_chrome_trace(obj) == []
        assert obj["metadata"]["clock_hz"] == CLOCK_HZ
        spans = [e for e in obj["traceEvents"] if e["ph"] == "X"]
        spmv = next(e for e in spans if e["name"] == "cs_spmv")
        assert spmv["dur"] == pytest.approx(400 * 1e6 / CLOCK_HZ)
        # Metadata records name the process/thread for the trace viewer.
        assert {e["name"] for e in obj["traceEvents"] if e["ph"] == "M"} == {
            "process_name", "thread_name"}

    def test_events_sorted_by_timestamp(self):
        # Convergence counters are appended post-run; the export re-sorts.
        events = list(reversed(sample_events()))
        obj = chrome_trace(events, meta=META)
        ts = [e["ts"] for e in obj["traceEvents"] if e["ph"] != "M"]
        assert ts == sorted(ts)

    def test_counter_args_carry_only_values(self):
        obj = chrome_trace(sample_events(), meta=META)
        counters = [e for e in obj["traceEvents"] if e["ph"] == "C"]
        for c in counters:
            assert all(isinstance(v, (int, float)) for v in c["args"].values())

    def test_chrome_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome(sample_events(), path, meta=META)
        events, meta = load_trace(path)
        assert meta["clock_hz"] == CLOCK_HZ
        spmv = next(e for e in events
                    if isinstance(e, SpanEvent) and e.name == "cs_spmv")
        # µs -> cycles reconstruction through metadata.clock_hz is lossless.
        assert (spmv.start, spmv.dur) == (0, 400)
        residual = next(e for e in events
                        if isinstance(e, CounterEvent) and e.name == "residual")
        assert residual.ts == 850


class TestNDJSONExport:
    def test_round_trip_preserves_cycles(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        write_ndjson(sample_events(), path, meta=META)
        first = json.loads(path.read_text().splitlines()[0])
        assert first["kind"] == "meta" and first["clock_hz"] == CLOCK_HZ
        events, meta = load_trace(path)
        assert meta["num_tiles"] == 4
        assert len(events) == len(sample_events())
        exch = next(e for e in events
                    if isinstance(e, SpanEvent) and e.cat == "exchange")
        assert exch.start == 400 and exch.args["total_bytes"] == 800

    def test_both_formats_agree(self, tmp_path):
        write_chrome(sample_events(), tmp_path / "c.json", meta=META)
        write_ndjson(sample_events(), tmp_path / "n.ndjson", meta=META)
        from_chrome, _ = load_trace(tmp_path / "c.json")
        from_ndjson, _ = load_trace(tmp_path / "n.ndjson")
        key = lambda e: (e.start if isinstance(e, SpanEvent) else e.ts, e.name)
        assert [key(e) for e in sorted(from_chrome, key=key)] == \
               [key(e) for e in sorted(from_ndjson, key=key)]


class TestValidation:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []
        assert validate_chrome_trace({"no": "traceEvents"}) != []

    def test_rejects_bad_records(self):
        bad = {"traceEvents": [
            {"ph": "Z", "pid": 0, "name": "x", "ts": 0},
            {"ph": "X", "pid": 0, "name": "", "ts": 0, "dur": 1, "tid": 0},
            {"ph": "X", "pid": 0, "name": "x", "ts": -5, "dur": 1, "tid": 0},
            {"ph": "C", "pid": 0, "name": "c", "ts": 0, "args": {}},
            {"ph": "C", "pid": 0, "name": "c", "ts": 0, "args": {"v": "oops"}},
        ]}
        errors = validate_chrome_trace(bad)
        assert len(errors) == 5

    def test_accepts_valid(self):
        assert validate_chrome_trace(chrome_trace(sample_events(), META)) == []


class TestTimelineValidation:
    """Regressions for the graceful-degradation timeline bug: a rebuilt
    program's clock restarting at zero produced out-of-order timestamps and
    partially overlapping spans that the validator used to wave through."""

    @staticmethod
    def _span(name, ts, dur, tid=0):
        return {"ph": "X", "pid": 0, "tid": tid, "name": name, "cat": "scope",
                "ts": ts, "dur": dur}

    def test_rejects_out_of_order_timestamps(self):
        obj = {"traceEvents": [self._span("a", 100, 10), self._span("b", 5, 10)]}
        errors = validate_chrome_trace(obj)
        assert any("non-monotone timestamp" in e for e in errors)

    def test_rejects_partially_overlapping_spans(self):
        # [0, 100) and [50, 150) on one thread: two executions written onto
        # the same clock range — exactly what an unshifted rebuild produces.
        obj = {"traceEvents": [self._span("run1", 0, 100),
                               self._span("run2", 50, 100)]}
        errors = validate_chrome_trace(obj)
        assert any("partially overlaps" in e for e in errors)

    def test_accepts_nested_and_disjoint_spans(self):
        obj = {"traceEvents": [
            self._span("outer", 0, 100),
            self._span("child", 10, 20),
            self._span("child2", 40, 60),   # closes flush with outer
            self._span("later", 100, 50),
        ]}
        assert validate_chrome_trace(obj) == []

    def test_overlap_on_different_threads_is_fine(self):
        obj = {"traceEvents": [self._span("t0", 0, 100, tid=0),
                               self._span("t1", 50, 100, tid=1)]}
        # ts order is still required globally; these are sorted.
        assert validate_chrome_trace(obj) == []

    def test_rejects_counter_track_going_backwards(self):
        obj = {"traceEvents": [
            {"ph": "C", "pid": 0, "name": "residual", "ts": 100,
             "args": {"v": 1.0}},
            {"ph": "M", "pid": 0, "name": "process_name", "ts": 0,
             "args": {"name": "x"}},
            {"ph": "C", "pid": 0, "name": "residual", "ts": 40,
             "args": {"v": 0.5}},
        ]}
        errors = validate_chrome_trace(obj)
        assert any("goes back in time" in e for e in errors)

    def test_degraded_solve_trace_validates_clean(self):
        # End to end: a solve that OOMs mid-run, degrades, and rebuilds must
        # still export one coherent monotone timeline (the tracer shifts the
        # rebuilt run's clock past the aborted run).
        from repro.solvers import solve
        from repro.sparse import poisson3d
        from repro.telemetry import chrome_trace

        crs, dims = poisson3d(8)
        b = np.random.default_rng(3).standard_normal(crs.n)
        r = solve(crs, b, {"solver": "cg", "tol": 1e-6}, num_ipus=2,
                  tiles_per_ipu=16, grid_dims=dims, trace=True,
                  inject_faults="seed=1;tile_oom:tile=3,at=300",
                  resilience="checkpoint_every=5")
        assert r.resilience.outcome == "degraded"
        obj = chrome_trace(r.telemetry.events, meta=r.telemetry.meta)
        assert validate_chrome_trace(obj) == []


class TestReportAggregation:
    def test_phase_totals_and_hottest(self):
        rep = TelemetryReport.from_events(sample_events(), meta=META)
        assert rep.wall_cycles == 1000
        assert rep.compute_cycles == 500 and rep.compute_phases == 2
        assert rep.exchange_cycles == 300 and rep.exchange_phases == 1
        assert rep.control_cycles == 50
        assert rep.hottest[0][:2] == ("cs_spmv", "spmv")
        assert rep.hottest[0][4] == pytest.approx(0.4)  # share of wall
        assert rep.scopes == [("solve:cg", 1000, 1)]

    def test_hottest_merges_repeated_sets_and_honors_top(self):
        events = [SpanEvent("cs_a", "compute", i * 10, 10,
                            {"category": "spmv", "imbalance": 1.0})
                  for i in range(5)]
        events += [SpanEvent(f"cs_{n}", "compute", 50 + i * 10, 1,
                             {"category": "axpy", "imbalance": 1.0})
                   for i, n in enumerate("bcd")]
        rep = TelemetryReport.from_events(events, top=2)
        assert len(rep.hottest) == 2
        assert rep.hottest[0] == ("cs_a", "spmv", 50, 5, pytest.approx(50 / 71))

    def test_imbalance_histogram_buckets(self):
        events = [SpanEvent("cs", "compute", i, 1, {"imbalance": v})
                  for i, v in enumerate([1.0, 1.07, 1.3, 5.0])]
        rep = TelemetryReport.from_events(events)
        assert rep.imbalance_histogram == {
            "<= 1.05": 1, "1.05-1.10": 1, "1.25-1.50": 1,
            f"> {IMBALANCE_BUCKETS[-1]:.2f}": 1}
        assert rep.max_imbalance == 5.0
        assert rep.mean_imbalance == pytest.approx((1.0 + 1.07 + 1.3 + 5.0) / 4)

    def test_overlap_summary_is_bsp_serial(self):
        rep = TelemetryReport.from_events(sample_events(), meta=META)
        ex = rep.exchange
        assert ex["overlapped_cycles"] == 0
        assert ex["compute_share"] == pytest.approx(0.5)
        assert ex["exchange_share"] == pytest.approx(0.3)
        # scope span covers the whole wall, so nothing is uncovered beyond
        # the 150 cycles not inside any compute/exchange/control span.
        assert ex["uncovered_share"] == pytest.approx(0.15)
        assert ex["total_bytes"] == 800
        assert ex["mean_congestion"] == pytest.approx(1.5)

    def test_residual_and_sram_sections(self):
        rep = TelemetryReport.from_events(sample_events(), meta=META)
        assert rep.residual == {"points": 1, "first": 1e-3, "last": 1e-3,
                                "last_cycle": 850}
        assert rep.sram["max_bytes"] == 64

    def test_empty_trace(self):
        rep = TelemetryReport.from_events([])
        assert rep.wall_cycles == 0
        assert rep.hottest == [] and rep.imbalance_histogram == {}
        assert "telemetry report" in rep.render()

    def test_render_mentions_key_sections(self):
        text = TelemetryReport.from_events(sample_events(), meta=META).render()
        for needle in ("hottest compute sets", "cs_spmv", "load imbalance",
                       "SRAM high-water", "convergence", "exchange:"):
            assert needle in text
