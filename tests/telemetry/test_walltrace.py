"""WallTracer: measured wall-clock spans on every backend, wall-domain
Chrome export, per-kernel profiles, and the metrics feed."""

import json

import numpy as np
import pytest

from repro.solvers import solve
from repro.sparse import poisson3d
from repro.telemetry import (
    MetricsRegistry,
    WallTracer,
    load_trace,
    validate_chrome_trace,
)
from repro.telemetry.walltrace import WALL_CLOCK_HZ

CG = '{"solver": "cg", "tol": 1e-6, "max_iterations": 80}'


def small_problem():
    crs, dims = poisson3d(6)
    return crs, dims, np.ones(crs.n)


@pytest.mark.parametrize("backend", ["sim", "fast", "fused"])
def test_every_backend_accepts_a_wall_tracer(backend):
    crs, dims, b = small_problem()
    res = solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4,
                backend=backend, wall_trace=True)
    wt = res.wall_telemetry
    assert isinstance(wt, WallTracer)
    assert len(wt) > 0
    assert wt.meta["clock"] == "wall_ns"
    assert wt.meta["clock_hz"] == WALL_CLOCK_HZ
    # The sim device's modeled rate travels separately, never as clock_hz.
    assert wt.meta["device_clock_hz"] != WALL_CLOCK_HZ
    prof = res.wall_profile
    assert prof["clock"] == "wall_ns"
    assert prof["total_wall_ns"] > 0 and prof["kernels"]
    assert res.wall_seconds > 0


def test_fused_kernel_spans_carry_counts_and_estimates():
    crs, dims, b = small_problem()
    res = solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4,
                backend="fused", wall_trace=True)
    kernel_spans = [e for e in res.wall_telemetry.events
                    if getattr(e, "cat", None) == "kernel"]
    assert kernel_spans
    launches = sum(1 for _ in kernel_spans)
    assert launches == res.kernel_counters["kernels"]
    for e in kernel_spans:
        assert e.args["n_compute"] >= 1
        assert e.args["est_bytes"] > 0
        assert e.args["est_flops"] >= 0
        assert e.dur >= 0
    # The profile aggregates exactly those spans.
    prof = res.wall_profile
    assert sum(r["launches"] for r in prof["kernels"]) == launches
    hot = prof["kernels"][0]
    assert hot["wall_ns"] == max(r["wall_ns"] for r in prof["kernels"])
    if hot["est_bytes"] and hot["wall_ns"]:
        assert hot["gb_per_s"] > 0


def test_fast_backend_dispatch_spans_cover_compute_and_exchange():
    crs, dims, b = small_problem()
    res = solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4,
                backend="fast", wall_trace=True)
    cats = {getattr(e, "cat", None) for e in res.wall_telemetry.events}
    assert "compute" in cats and "exchange" in cats and "scope" in cats


def test_wall_chrome_trace_validates_and_round_trips(tmp_path):
    crs, dims, b = small_problem()
    path = tmp_path / "wall.json"
    res = solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4,
                backend="fused", wall_trace=path)
    doc = json.loads(path.read_text())
    assert validate_chrome_trace(doc) == []
    assert doc["metadata"]["clock"] == "wall_ns"
    assert doc["metadata"]["clock_hz"] == WALL_CLOCK_HZ
    events, meta = load_trace(path)
    assert meta["clock"] == "wall_ns"
    # ns timestamps survive the µs-scaled export exactly (1e9 Hz -> 1e3/µs).
    def starts(evs):
        return sorted(getattr(e, "start", getattr(e, "ts", None)) for e in evs)

    assert starts(events) == starts(res.wall_telemetry.events)


def test_wall_report_renders_in_the_wall_domain():
    crs, dims, b = small_problem()
    res = solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4,
                backend="fused", wall_trace=True)
    report = res.wall_telemetry.report(top=3)
    assert report.clock_unit == "ns"
    assert report.wall_kernels
    text = report.render()
    assert "clock domain: wall" in text
    assert "hottest kernels" in text
    assert "wall ns" in text


def test_wall_tracer_feeds_metrics_registry():
    crs, dims, b = small_problem()
    reg = MetricsRegistry()
    res = solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4,
                backend="fused", metrics=reg)
    assert res.metrics is reg
    launches = reg.counter("repro_kernel_launches_total")
    total = sum(launches.series.values())
    assert total == res.kernel_counters["kernels"]
    assert reg.gauge("repro_solve_iterations").value() == res.iterations
    assert reg.counter("repro_solves_total").value(backend="fused") == 1
    _, wall_sum, n = reg.histogram("repro_kernel_wall_seconds").snapshot(
        name=res.wall_profile["kernels"][0]["name"]
    )
    assert n > 0 and wall_sum > 0


def test_metrics_path_writes_snapshot(tmp_path):
    crs, dims, b = small_problem()
    prom = tmp_path / "m.prom"
    jsn = tmp_path / "m.json"
    solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4, backend="fused",
          metrics=prom)
    solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4, backend="fused",
          metrics=jsn)
    assert "repro_kernel_wall_ns_total" in prom.read_text()
    assert "repro_kernel_wall_ns_total" in json.loads(jsn.read_text())


def test_progress_callback_streams_samples():
    crs, dims, b = small_problem()
    samples = []
    res = solve(crs, b, CG, grid_dims=dims, tiles_per_ipu=4, backend="fast",
                on_progress=samples.append, progress_every=2)
    assert samples, "no progress samples emitted"
    assert all(p.iteration % 2 == 0 for p in samples)
    assert all(p.active_columns == 1 for p in samples)
    assert all(p.wall_seconds >= 0 for p in samples)
    # Samples follow the recorded residual history.
    recorded = dict(zip(res.stats.iterations, res.stats.residuals))
    for p in samples:
        assert recorded[p.iteration] == p.relative_residual


def test_batched_progress_reports_active_columns():
    crs, dims, b = small_problem()
    bs = np.stack([b, 2.0 * b, np.arange(crs.n, dtype=float)])
    samples = []
    res = solve(crs, bs, CG, grid_dims=dims, tiles_per_ipu=4, backend="fused",
                on_progress=samples.append)
    assert res.batch == 3
    assert samples
    assert samples[0].active_columns == 3
    assert samples[-1].active_columns <= 3
    assert min(p.active_columns for p in samples) < 3  # someone converged first
