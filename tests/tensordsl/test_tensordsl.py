"""Tests for TensorDSL: lazy expressions, materialization, reductions, precision."""

import numpy as np
import pytest

from repro.graph import collect_stats
from repro.machine import IPUDevice
from repro.tensordsl import TensorContext, Type


@pytest.fixture
def ctx():
    return TensorContext(IPUDevice(tiles_per_ipu=4))


class TestLazyExpressions:
    def test_operators_stay_lazy(self, ctx):
        x = ctx.tensor((8,), data=np.arange(8))
        y = x * 4 + 1
        assert not y.is_materialized
        # Nothing was appended to the schedule yet.
        assert len(ctx.root.steps) == 0

    def test_materialize_fuses_into_one_step(self, ctx):
        x = ctx.tensor((8,), data=np.arange(8))
        y = ((x * 4 + 1) / 2 - 3).materialize()
        # One compute set total, despite four operators (delayed
        # materialization, Sec. III-C).
        stats = collect_stats(ctx.root)
        assert stats.compute_sets == 1
        ctx.run()
        np.testing.assert_allclose(y.value(), (np.arange(8) * 4 + 1) / 2 - 3)

    def test_eager_mode_materializes_each_op(self):
        ctx = TensorContext(IPUDevice(tiles_per_ipu=4), eager=True)
        x = ctx.tensor((8,), data=np.arange(8))
        y = (x * 4) + 1
        assert y.is_materialized
        stats = collect_stats(ctx.root)
        assert stats.compute_sets == 2  # one per operator — the ablation baseline

    def test_scalar_broadcasting(self, ctx):
        x = ctx.tensor((8,), data=np.ones(8))
        a = ctx.scalar(3.0)
        y = (x * a + a).materialize()
        ctx.run()
        np.testing.assert_allclose(y.value(), np.full(8, 6.0))

    def test_elementwise_ops(self, ctx):
        x = ctx.tensor((8,), data=np.linspace(1, 8, 8))
        y = ctx.tensor((8,), data=np.linspace(8, 1, 8))
        out = {
            "+": (x + y),
            "-": (x - y),
            "*": (x * y),
            "/": (x / y),
            "neg": (-x),
            "abs": abs(x - 5.0),
            "sqrt": x.sqrt(),
        }
        mats = {k: v.materialize() for k, v in out.items()}
        ctx.run()
        xa, ya = np.linspace(1, 8, 8), np.linspace(8, 1, 8)
        np.testing.assert_allclose(mats["+"].value(), xa + ya, rtol=1e-6)
        np.testing.assert_allclose(mats["-"].value(), xa - ya, rtol=1e-6)
        np.testing.assert_allclose(mats["*"].value(), xa * ya, rtol=1e-6)
        np.testing.assert_allclose(mats["/"].value(), xa / ya, rtol=1e-6)
        np.testing.assert_allclose(mats["neg"].value(), -xa, rtol=1e-6)
        np.testing.assert_allclose(mats["abs"].value(), np.abs(xa - 5), rtol=1e-6)
        np.testing.assert_allclose(mats["sqrt"].value(), np.sqrt(xa), rtol=1e-6)

    def test_reverse_operators(self, ctx):
        x = ctx.tensor((4,), data=np.array([1.0, 2.0, 4.0, 8.0]))
        y = (1.0 / x).materialize()
        z = (10.0 - x).materialize()
        w = (2.0 + x).materialize()
        v = (3.0 * x).materialize()
        ctx.run()
        np.testing.assert_allclose(y.value(), [1, 0.5, 0.25, 0.125])
        np.testing.assert_allclose(z.value(), [9, 8, 6, 2])
        np.testing.assert_allclose(w.value(), [3, 4, 6, 10])
        np.testing.assert_allclose(v.value(), [3, 6, 12, 24])

    def test_mismatched_mappings_rejected(self, ctx):
        x = ctx.tensor((8,))
        y = ctx.tensor((8,), tile_ids=[0, 1])  # different distribution
        with pytest.raises(ValueError):
            (x + y).materialize()

    def test_cross_context_rejected(self, ctx):
        other = TensorContext(IPUDevice(tiles_per_ipu=4))
        x = ctx.tensor((4,))
        y = other.tensor((4,))
        with pytest.raises(ValueError):
            _ = x + y


class TestAssignment:
    def test_assign_updates_in_place(self, ctx):
        x = ctx.tensor((8,), data=np.zeros(8))
        x.assign(x + 1.0)
        x.assign(x * 3.0)
        ctx.run()
        np.testing.assert_allclose(x.value(), np.full(8, 3.0))

    def test_assign_scalar_value(self, ctx):
        x = ctx.tensor((4,), data=np.arange(4))
        x.assign(7.0)
        ctx.run()
        np.testing.assert_allclose(x.value(), np.full(4, 7.0))

    def test_assign_requires_materialized_target(self, ctx):
        x = ctx.tensor((4,))
        lazy = x + 1
        with pytest.raises(ValueError):
            lazy.assign(x)


class TestReductions:
    def test_reduce_sum(self, ctx):
        x = ctx.tensor((100,), data=np.arange(100))
        s = x.reduce()
        ctx.run()
        assert s.value() == pytest.approx(4950.0)

    def test_fused_dot_product(self, ctx):
        a = ctx.tensor((64,), data=np.full(64, 2.0))
        b = ctx.tensor((64,), data=np.full(64, 3.0))
        d = a.dot(b)
        # The multiply fuses into the partial-reduce codelet: no separate
        # elementwise compute set.
        stats = collect_stats(ctx.root)
        assert stats.compute_sets == 2  # partial + combine only
        ctx.run()
        assert d.value() == pytest.approx(64 * 6.0)

    def test_norm2(self, ctx):
        x = ctx.tensor((2,), data=np.array([3.0, 4.0]), tile_ids=[0, 1])
        n = x.norm2()
        ctx.run()
        assert n.value() == pytest.approx(5.0)

    def test_reduce_result_is_replicated(self, ctx):
        x = ctx.tensor((16,), data=np.ones(16))
        s = x.reduce()
        ctx.run()
        for t in s.var.tile_ids:
            assert s.var.shard(t).data[0] == 16.0

    def test_reduce_charges_reduce_category(self, ctx):
        x = ctx.tensor((64,), data=np.ones(64))
        x.reduce()
        ctx.run()
        assert ctx.device.profiler.category("reduce") > 0
        assert ctx.device.profiler.category("exchange") > 0


class TestPrecision:
    def test_dw_expression_beats_float32(self, ctx):
        # Accumulating 1e5 well-scaled values: f32 loses ~4 digits, dw keeps ~13.
        rng = np.random.default_rng(2)
        data = rng.uniform(0.9, 1.1, 4096)
        x32 = ctx.tensor((4096,), data=data)
        xdw = ctx.tensor((4096,), dtype=Type.DOUBLEWORD, data=data)
        s32 = x32.reduce()
        sdw = xdw.reduce()
        ctx.run()
        exact = data.sum()
        assert abs(sdw.value() - exact) < abs(s32.value() - exact) / 10 + 1e-12
        assert abs(sdw.value() - exact) / exact < 1e-10

    def test_astype_roundtrip(self, ctx):
        data = np.array([np.pi, np.e, 1 + 1e-9, -2.5])
        x = ctx.tensor((4,), dtype=Type.DOUBLEWORD, data=data)
        y = x.astype(Type.FLOAT32).materialize()
        z = x.astype(Type.FLOAT64).materialize()
        ctx.run()
        np.testing.assert_allclose(y.value(), data.astype(np.float32))
        np.testing.assert_allclose(z.value(), data, rtol=2**-45)

    def test_mixed_precision_promotes(self, ctx):
        a = ctx.tensor((4,), data=np.ones(4))
        b = ctx.tensor((4,), dtype=Type.DOUBLEWORD, data=np.ones(4))
        assert (a + b).dtype == Type.DOUBLEWORD
        c = ctx.tensor((4,), dtype=Type.FLOAT64, data=np.ones(4))
        assert (b + c).dtype == Type.FLOAT64

    def test_extended_precision_profiler_bucket(self, ctx):
        x = ctx.tensor((64,), dtype=Type.DOUBLEWORD, data=np.ones(64))
        (x * 2.0).materialize()
        ctx.run()
        assert ctx.device.profiler.category("extended_precision") > 0

    def test_dw_ops_cost_more_cycles(self):
        def cycles(dtype):
            c = TensorContext(IPUDevice(tiles_per_ipu=4))
            x = c.tensor((600,), dtype=dtype, data=np.ones(600))
            (x * 2.0 + 1.0).materialize()
            c.run()
            return c.device.profiler.total_cycles

        assert cycles(Type.DOUBLEWORD) > 4 * cycles(Type.FLOAT32)
        assert cycles(Type.FLOAT64) > 4 * cycles(Type.DOUBLEWORD)


class TestControlFlow:
    def test_if_true_branch(self, ctx):
        x = ctx.tensor((4,), data=np.zeros(4))
        flag = ctx.scalar(1.0)
        ctx.If(flag, lambda: x.assign(x + 1.0), lambda: x.assign(x - 1.0))
        ctx.run()
        np.testing.assert_allclose(x.value(), np.ones(4))

    def test_if_on_comparison_expr(self, ctx):
        x = ctx.tensor((4,), data=np.zeros(4))
        a = ctx.scalar(2.0)
        ctx.If(a > 1.0, lambda: x.assign(x + 5.0))
        ctx.run()
        np.testing.assert_allclose(x.value(), np.full(4, 5.0))

    def test_while_loop(self, ctx):
        # Count down: cond = (counter > 0), decrement in body.
        counter = ctx.scalar(5.0)
        total = ctx.scalar(0.0)
        running = ctx.scalar(1.0)

        def body():
            total.assign(total + counter)
            counter.assign(counter - 1.0)
            running.assign(counter > 0.0)

        ctx.While(running, body)
        ctx.run()
        assert total.value() == pytest.approx(15.0)  # 5+4+3+2+1

    def test_repeat(self, ctx):
        x = ctx.tensor((4,), data=np.zeros(4))
        ctx.Repeat(7, lambda: x.assign(x + 2.0))
        ctx.run()
        np.testing.assert_allclose(x.value(), np.full(4, 14.0))

    def test_while_condition_must_be_scalar(self, ctx):
        v = ctx.tensor((4,))
        with pytest.raises(ValueError):
            ctx.While(v, lambda: None)


class TestPaperFig1:
    """End-to-end reproduction of the paper's Fig. 1: pi via Leibniz."""

    def test_pi_example(self, capsys):
        ctx = TensorContext(IPUDevice(tiles_per_ipu=4))
        # Create a TensorDSL tensor.
        x = ctx.tensor((10_000,), Type.FLOAT32)

        # Fill it with the Leibniz sequence using CodeDSL (tile-centric; each
        # tile fills its own shard — offsets shift the series per tile, so we
        # pass a per-tile offset via a second tensor).
        offsets = ctx.tensor((4,), data=np.array([s.interval.start for s in
                                                  sorted(x.var.shards.values(), key=lambda s: s.interval.start)],
                                                 dtype=np.float32), tile_ids=[0, 1, 2, 3])
        from repro.codedsl import For, Select

        ctx.Execute([x, offsets], lambda xs, off: For(
            0, xs.size, 1,
            lambda i: xs.set(i, Select((i + off[0]) % 2 == 0, 1.0, -1.0) / (2 * (i + off[0]) + 1)),
        ))

        # Calculate pi from the sequence using TensorDSL.
        pi = (x.reduce() * 4).materialize()
        ctx.If(abs(pi - 3.141) < 0.001, lambda: ctx.print("We found pi!"))
        ctx.run()
        assert pi.value() == pytest.approx(np.pi, abs=1e-3)
        assert "We found pi!" in capsys.readouterr().out


class TestHostInteraction:
    def test_callback_reads_live_values(self, ctx):
        x = ctx.tensor((4,), data=np.zeros(4))
        seen = []
        ctx.Repeat(3, lambda: (
            x.assign(x + 1.0),
            ctx.callback(lambda e: seen.append(x.value()[0])),
        ))
        ctx.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_value_requires_materialized(self, ctx):
        x = ctx.tensor((4,))
        with pytest.raises(ValueError):
            (x + 1).value()
