"""Tests for the max/min reductions and infinity norm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import IPUDevice
from repro.tensordsl import TensorContext, Type


@pytest.fixture
def ctx():
    return TensorContext(IPUDevice(tiles_per_ipu=4))


class TestMaxMinReductions:
    def test_max_min(self, ctx):
        data = np.array([3.0, -7.5, 2.0, 5.0, -1.0, 0.5, 4.0, -2.0])
        x = ctx.tensor((8,), data=data)
        mx, mn = x.max(), x.min()
        ctx.run()
        assert mx.value() == 5.0
        assert mn.value() == -7.5

    def test_norm_inf(self, ctx):
        x = ctx.tensor((8,), data=np.array([3.0, -7.5, 2.0, 5.0, -1.0, 0.5, 4.0, -2.0]))
        n = x.norm_inf().materialize()
        ctx.run()
        assert n.value() == 7.5

    def test_max_of_expression_fused(self, ctx):
        from repro.graph import collect_stats

        x = ctx.tensor((16,), data=np.linspace(-3, 3, 16))
        m = (x * x).max()  # max |x|² without materializing x*x
        stats = collect_stats(ctx.root)
        assert stats.compute_sets == 2  # partial + combine only
        ctx.run()
        assert m.value() == pytest.approx(9.0)

    def test_dw_max_keeps_precision(self, ctx):
        data = np.array([1.0, 1.0 + 1e-10, 1.0 - 1e-10, 0.5])
        x = ctx.tensor((4,), dtype=Type.DOUBLEWORD, data=data)
        m = x.max()
        ctx.run()
        assert m.value() == pytest.approx(1.0 + 1e-10, abs=1e-14)

    def test_unknown_op_rejected(self, ctx):
        x = ctx.tensor((4,))
        with pytest.raises(ValueError, match="reduction op"):
            x.reduce(op="prod")

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                              allow_subnormal=False, width=32),
                    min_size=1, max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_matches_numpy_property(self, values):
        ctx = TensorContext(IPUDevice(tiles_per_ipu=4))
        arr = np.array(values, dtype=np.float32)
        x = ctx.tensor((arr.size,), data=arr.astype(np.float64))
        mx, mn = x.max(), x.min()
        ctx.run()
        assert mx.value() == arr.max()
        assert mn.value() == arr.min()

    def test_single_tile_subset(self, ctx):
        x = ctx.tensor((6,), data=np.arange(6, dtype=np.float64), tile_ids=[1, 2])
        m = x.max()
        ctx.run()
        assert m.value() == 5.0
