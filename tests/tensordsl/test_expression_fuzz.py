"""Fuzz test: random TensorDSL expression trees vs. a float64 host reference.

Generates random expression trees over mixed-dtype tensors and scalars,
materializes them on the simulated device, and compares against direct
NumPy evaluation — the broadest check that symbolic execution, fusion,
broadcasting, dtype promotion, and the dw kernels compose correctly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import IPUDevice
from repro.tensordsl import TensorContext, Type

N = 24

# Leaf specs: (kind, dtype)  kind: vector / scalar / const
leaf = st.sampled_from(
    [
        ("vector", Type.FLOAT32),
        ("vector", Type.DOUBLEWORD),
        ("vector", Type.FLOAT64),
        ("scalar", Type.FLOAT32),
        ("const", None),
    ]
)

binop = st.sampled_from(["+", "-", "*", "/"])
unop = st.sampled_from(["neg", "abs", "sqrt", None])


@st.composite
def expr_tree(draw, depth=0):
    if depth >= 3 or draw(st.booleans()) and depth > 0:
        return draw(leaf)
    return (
        "node",
        draw(binop),
        draw(expr_tree(depth=depth + 1)),
        draw(expr_tree(depth=depth + 1)),
        draw(unop),
    )


def build(tree, ctx, rng, host_leaves):
    """Return (tensor_expr, host_f64, host_f32) for a tree.

    The f64 value is the accuracy target; the f32 value re-evaluates the
    same tree with float32 rounding at every node, so its deviation from
    f64 measures how much cancellation in *this particular tree* amplifies
    single-precision rounding — the same amplification the device's f32
    kernels legitimately suffer.
    """
    if tree[0] == "vector":
        data = rng.uniform(0.5, 2.0, N)  # positive: safe for / and sqrt
        t = ctx.tensor((N,), dtype=tree[1], data=data)
        host_leaves.append(data)
        return t, data.copy(), data.astype(np.float32)
    if tree[0] == "scalar":
        v = float(rng.uniform(0.5, 2.0))
        return ctx.scalar(v, dtype=tree[1]), v, np.float32(v)
    if tree[0] == "const":
        v = float(rng.uniform(0.5, 2.0))
        return v, v, np.float32(v)
    _, op, lt, rt, u = tree
    le, lh, lh32 = build(lt, ctx, rng, host_leaves)
    re_, rh, rh32 = build(rt, ctx, rng, host_leaves)
    if isinstance(le, float) and isinstance(re_, float):
        # Two consts: collapse on the host side to keep one tensor operand.
        le = ctx.scalar(le)
        lh = float(lh)
    apply = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
             "*": lambda a, b: a * b, "/": lambda a, b: a / b}[op]
    e = apply(le, re_)
    h = apply(np.asarray(lh, dtype=np.float64), np.asarray(rh, dtype=np.float64))
    h32 = np.asarray(apply(lh32, rh32), dtype=np.float32)
    if u == "neg":
        e, h, h32 = -e, -h, -h32
    elif u == "abs":
        e, h, h32 = abs(e), np.abs(h), np.abs(h32)
    elif u == "sqrt":
        # Subtractions can go negative; square first so sqrt stays real.
        e = (e * e).sqrt() if not isinstance(e, float) else e
        h = np.sqrt(h * h)
        h32 = np.sqrt(np.asarray(h32 * h32, dtype=np.float32))
    return e, h, h32


@given(tree=expr_tree(), seed=st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_random_expression_matches_host(tree, seed):
    if tree[0] != "node":
        return  # trivial leaf: nothing to materialize
    rng = np.random.default_rng(seed)
    ctx = TensorContext(IPUDevice(tiles_per_ipu=4))
    host_leaves = []
    expr, host, host32 = build(tree, ctx, rng, host_leaves)
    from repro.tensordsl.tensor import Tensor

    if not isinstance(expr, Tensor):
        return
    out = expr.materialize()
    ctx.run()
    got = np.asarray(out.value(), dtype=np.float64)
    want = np.broadcast_to(np.asarray(host, dtype=np.float64), got.shape)
    want32 = np.broadcast_to(np.asarray(host32, dtype=np.float64), got.shape)
    # Tolerance follows the weakest participating precision (f32 leaves may
    # dominate): the expression ran with at least f32 rounding per node.
    # A flat rtol is not a theorem, though — near-cancelling subtractions
    # amplify f32 rounding without bound — so the bound widens by the
    # f32-host deviation, which experiences the same amplification.
    err = np.abs(got - want)
    bound = 1e-5 + 1e-4 * np.abs(want) + 16 * np.abs(want32 - want)
    worst = int(np.argmax(err - bound))
    assert np.all(err <= bound), (
        f"device result outside the precision envelope at [{worst}]: "
        f"got {got[worst]!r}, f64 host {want[worst]!r}, "
        f"f32 host {want32[worst]!r}, err {err[worst]:.3g} "
        f"> bound {bound[worst]:.3g}")


@given(tree=expr_tree(), seed=st.integers(0, 10**6))
@settings(max_examples=15, deadline=None)
def test_lazy_equals_eager(tree, seed):
    """Fusion must never change results: lazy and eager modes agree exactly
    up to f32 intermediate rounding."""
    if tree[0] != "node":
        return
    outs = []
    for eager in (False, True):
        rng = np.random.default_rng(seed)
        ctx = TensorContext(IPUDevice(tiles_per_ipu=4), eager=eager)
        from repro.tensordsl.tensor import Tensor

        expr, _, _ = build(tree, ctx, rng, [])
        if not isinstance(expr, Tensor):
            return
        out = expr.materialize()
        ctx.run()
        outs.append(np.asarray(out.value(), dtype=np.float64))
    # Eager materializes intermediates (extra roundings in the output dtype);
    # values agree within that rounding.
    np.testing.assert_allclose(outs[0], outs[1], rtol=1e-5, atol=1e-6)
