"""Tests for the CPU/GPU baseline numerics and performance models."""

import numpy as np
import scipy.sparse as sp

from repro.baselines import (
    H100_SXM,
    IPU_M2000,
    XEON_8470Q,
    energy_j,
    global_ilu0,
    ilu_solve_time,
    reference_bicgstab,
    reference_solve_info,
    solver_iteration_time,
    spmv_time,
)
from repro.sparse import ModifiedCRS, poisson2d, poisson3d


class TestGlobalILU0:
    def test_exact_on_tridiagonal(self):
        # Tridiagonal pattern admits exact LU: L@U must equal A.
        a = sp.diags([-1.0, 4.0, -1.0], [-1, 0, 1], shape=(12, 12), format="csr")
        m = ModifiedCRS.from_scipy(a)
        lower, upper = global_ilu0(m)
        np.testing.assert_allclose((lower @ upper).toarray(), a.toarray(), atol=1e-12)

    def test_pattern_preserved(self):
        m, _ = poisson2d(6)
        lower, upper = global_ilu0(m)
        a = m.to_scipy()
        prod_pattern = set(zip(*sp.tril(a, -1).nonzero()))
        assert set(zip(*sp.tril(lower, -1).nonzero())) <= prod_pattern

    def test_residual_smaller_than_no_preconditioner(self):
        m, _ = poisson2d(8)
        lower, upper = global_ilu0(m)
        # A ≈ LU: the factorization error is small relative to |A|.
        err = sp.linalg.norm(lower @ upper - m.to_scipy())
        assert err < 0.5 * sp.linalg.norm(m.to_scipy())


class TestReferenceBiCGStab:
    def test_converges_f64(self):
        m, _ = poisson2d(10)
        b = np.random.default_rng(0).standard_normal(m.n)
        x, iters, hist = reference_bicgstab(m, b, tol=1e-10)
        rel = np.linalg.norm(m.spmv(x) - b) / np.linalg.norm(b)
        assert rel < 1e-9  # native double precision: no f32 stall
        assert iters == len(hist)

    def test_ilu_reduces_iterations(self):
        m, _ = poisson2d(12)
        b = np.random.default_rng(1).standard_normal(m.n)
        _, it_plain, _ = reference_bicgstab(m, b, tol=1e-8, use_ilu=False)
        _, it_ilu, _ = reference_bicgstab(m, b, tol=1e-8, use_ilu=True)
        assert it_ilu < it_plain

    def test_global_ilu_beats_block_local(self):
        # The Sec. VI-D effect: the baselines' global ILU converges in fewer
        # iterations than the IPU's halo-ignoring block-local ILU.
        from repro.solvers import solve

        m, dims = poisson2d(12)
        b = np.random.default_rng(2).standard_normal(m.n)
        info = reference_solve_info(m, b, tol=1e-6)
        ipu = solve(
            m, b,
            {"solver": "bicgstab", "tol": 1e-6, "preconditioner": {"solver": "ilu0"}},
            grid_dims=dims, tiles_per_ipu=16,
        )
        assert info["iterations"] <= ipu.iterations

    def test_solve_info_fields(self):
        m, _ = poisson2d(6)
        b = np.ones(m.n)
        info = reference_solve_info(m, b, tol=1e-6)
        assert info["n"] == 36 and info["nnz"] == m.nnz
        assert info["num_levels"] >= 1
        assert info["iterations"] > 0


class TestPerfModel:
    # The paper-scale matrices (Table II) for ratio checks.
    N, NNZ = int(1.4e6), int(63.1e6)  # Geo_1438

    def test_spmv_bandwidth_ordering(self):
        t_cpu = spmv_time(XEON_8470Q, self.N, self.NNZ)
        t_gpu = spmv_time(H100_SXM, self.N, self.NNZ)
        t_ipu = spmv_time(IPU_M2000, self.N, self.NNZ, value_bytes=4)
        assert t_ipu < t_gpu < t_cpu

    def test_spmv_ratios_in_paper_range(self):
        # Fig. 7: IPU outperforms GPU 13-19x and CPU 55-150x.  The model
        # must land in (a superset of) that regime at paper scale.
        t_cpu = spmv_time(XEON_8470Q, self.N, self.NNZ)
        t_gpu = spmv_time(H100_SXM, self.N, self.NNZ)
        t_ipu = spmv_time(IPU_M2000, self.N, self.NNZ, value_bytes=4)
        assert 5 < t_gpu / t_ipu < 40
        assert 30 < t_cpu / t_ipu < 250

    def test_gpu_ilu_pays_per_level(self):
        fast = ilu_solve_time(H100_SXM, self.N, self.NNZ, num_levels=10)
        slow = ilu_solve_time(H100_SXM, self.N, self.NNZ, num_levels=3000)
        assert slow > 2 * fast
        # The CPU does not pay level overheads.
        assert ilu_solve_time(XEON_8470Q, self.N, self.NNZ, 10) == ilu_solve_time(
            XEON_8470Q, self.N, self.NNZ, 3000
        )

    def test_iteration_time_composition(self):
        t = solver_iteration_time(XEON_8470Q, self.N, self.NNZ, num_levels=100)
        assert t > 2 * spmv_time(XEON_8470Q, self.N, self.NNZ)

    def test_energy(self):
        assert energy_j(XEON_8470Q, 2.0) == 700.0
        assert energy_j(IPU_M2000, 1.0) == 420.0

    def test_small_problems_overhead_dominated_on_gpu(self):
        # At tiny sizes the 4 µs launch dominates the H100's bandwidth.
        t = spmv_time(H100_SXM, 1000, 5000)
        assert t > 0.8 * H100_SXM.op_overhead_s

    def test_table3_spec_sheet(self):
        # Table III constants.
        assert XEON_8470Q.tdp_w == 350 and XEON_8470Q.flops == 2.3e12
        assert H100_SXM.tdp_w == 700 and H100_SXM.flops == 34e12
        assert IPU_M2000.tdp_w == 420 and IPU_M2000.flops == 11e12
        assert IPU_M2000.mem_bandwidth == 47.5e12
