"""FaultPlan parsing: compact grammar, JSON, files, validation."""

import json

import pytest

from repro.errors import FaultSpecError
from repro.faults import BitFlip, FaultPlan, LinkStall, TileOOM


class TestCompactGrammar:
    def test_full_grammar(self):
        plan = FaultPlan.parse(
            "seed=42;bitflip:p=0.01,where=exchange;"
            "link_stall:ipus=0-1,cycles=500,p=0.1;tile_oom:tile=3,at=120"
        )
        assert plan.seed == 42
        assert len(plan) == 3
        bf, ls, oom = plan.faults
        assert bf == BitFlip(p=0.01, where="exchange")
        assert ls == LinkStall(src_ipu=0, dst_ipu=1, cycles=500, p=0.1)
        assert oom == TileOOM(tile=3, at_superstep=120)

    def test_defaults(self):
        plan = FaultPlan.parse("bitflip:p=0.5")
        assert plan.seed == 0
        assert plan.faults[0].where == "exchange"
        assert FaultPlan.parse("link_stall:ipus=1-2,cycles=9").faults[0].p == 1.0

    @pytest.mark.parametrize("bad", [
        "",                                  # empty
        "seed=42",                           # no fault clauses
        "bitflip",                           # missing p
        "bitflip:p=1.5",                     # p out of range
        "bitflip:p=0.1,where=dram",          # unknown site
        "bitflip:p=0.1,oops=1",              # unknown key
        "link_stall:ipus=0,cycles=5",        # pair must be A-B
        "link_stall:ipus=0-0,cycles=5",      # pair must be distinct
        "link_stall:ipus=0-1,cycles=0",      # cycles must be positive
        "tile_oom:tile=1,at=0",              # superstep is 1-based
        "tile_oom:tile=-1,at=3",             # tile must be >= 0
        "gremlin:p=1",                       # unknown kind
        "seed=banana;bitflip:p=0.1",         # bad seed
    ])
    def test_rejects(self, bad):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(bad)


class TestJsonForms:
    def test_round_trip(self):
        plan = FaultPlan.parse("seed=7;bitflip:p=0.25,where=sram;tile_oom:tile=2,at=9")
        again = FaultPlan.parse(plan.to_json())
        assert again == plan
        assert again.to_dict() == plan.to_dict()

    def test_dict_and_file(self, tmp_path):
        data = {"seed": 3, "faults": [{"kind": "bitflip", "p": 0.5}]}
        assert FaultPlan.parse(data).seed == 3
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(data))
        assert FaultPlan.parse(str(path)) == FaultPlan.parse(data)
        assert FaultPlan.parse(path) == FaultPlan.parse(data)

    def test_json_rejections(self, tmp_path):
        with pytest.raises(FaultSpecError, match="unknown fault-plan keys"):
            FaultPlan.parse({"seed": 1, "faults": [], "extra": True})
        with pytest.raises(FaultSpecError, match="unknown kind"):
            FaultPlan.parse({"faults": [{"kind": "gremlin"}]})
        with pytest.raises(FaultSpecError, match="not valid JSON"):
            FaultPlan.parse('{"seed": ')
        with pytest.raises(FaultSpecError, match="no such fault-plan file"):
            FaultPlan.parse(str(tmp_path / "missing.json"))

    def test_parse_is_idempotent_on_plans(self):
        plan = FaultPlan.parse("bitflip:p=0.1")
        assert FaultPlan.parse(plan) is plan
