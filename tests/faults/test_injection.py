"""FaultInjector behavior against the sim backend: determinism, off-plan
bit-identity, per-kind mechanics, backend gating, telemetry integration."""

import numpy as np
import pytest

from repro.bench.harness import ipu_spmv_run
from repro.errors import SRAMOverflowError
from repro.faults import FaultInjector, FaultPlan
from repro.machine import IPUDevice
from repro.sparse import poisson3d
from repro.sparse.distribute import DistributedMatrix
from repro.tensordsl import TensorContext


def _spmv_result(injector=None, tracer=None, repeats=4):
    """One traced/injected SpMV program; returns (y, cycles, engine)."""
    crs, dims = poisson3d(8)
    device = IPUDevice(num_ipus=2, tiles_per_ipu=16)
    ctx = TensorContext(device)
    A = DistributedMatrix(ctx, crs, grid_dims=dims)
    x = A.vector(data=np.random.default_rng(0).standard_normal(crs.n))
    y = A.vector()
    ctx.Repeat(repeats, lambda: A.spmv(x, y))
    engine = ctx.run(injector=injector, tracer=tracer)
    return y.read_global(), device.profiler.total_cycles, engine


class TestDeterminism:
    def test_same_plan_same_injections_tensors_cycles(self):
        plan = FaultPlan.parse("seed=11;bitflip:p=0.3,where=exchange")
        inj1, inj2 = FaultInjector(plan), FaultInjector(plan)
        y1, c1, _ = _spmv_result(injector=inj1)
        y2, c2, _ = _spmv_result(injector=inj2)
        assert [r.to_dict() for r in inj1.records] == [r.to_dict() for r in inj2.records]
        assert len(inj1.records) > 0
        assert np.array_equal(y1, y2)
        assert c1 == c2

    def test_different_seed_different_schedule(self):
        recs = []
        for seed in (11, 12):
            inj = FaultInjector(FaultPlan.parse(f"seed={seed};bitflip:p=0.3"))
            _spmv_result(injector=inj)
            recs.append([r.to_dict() for r in inj.records])
        assert recs[0] != recs[1]

    def test_no_injector_bit_identical_to_zero_p_plan(self):
        # An attached injector whose draws never fire must not perturb the
        # run: same tensors, same cycles as no injector at all.
        y0, c0, _ = _spmv_result(injector=None)
        inj = FaultInjector(FaultPlan.parse("seed=5;bitflip:p=0.0"))
        y1, c1, _ = _spmv_result(injector=inj)
        assert inj.records == []
        assert np.array_equal(y0, y1)
        assert c0 == c1


class TestKinds:
    def test_exchange_bitflip_changes_numerics_not_cycles(self):
        y0, c0, _ = _spmv_result()
        inj = FaultInjector(FaultPlan.parse("seed=11;bitflip:p=0.5,where=exchange"))
        y1, c1, _ = _spmv_result(injector=inj)
        assert any(r.kind == "bitflip" for r in inj.records)
        assert not np.array_equal(y0, y1)  # corruption reached the output
        assert c0 == c1  # bitflips are free in time

    def test_sram_bitflip_records_tile_and_shard(self):
        inj = FaultInjector(FaultPlan.parse("seed=9;bitflip:p=0.5,where=sram"))
        _spmv_result(injector=inj)
        assert inj.records
        detail = inj.records[0].to_dict()
        assert detail["where"] == "sram"
        assert "tile" in detail and "shard" in detail and "bit" in detail

    def test_link_stall_adds_exact_extra_cycles(self):
        _, c0, engine = _spmv_result()
        inj = FaultInjector(
            FaultPlan.parse("seed=2;link_stall:ipus=0-1,cycles=777,p=1.0"))
        y1, c1, _ = _spmv_result(injector=inj)
        stalls = [r for r in inj.records if r.kind == "link_stall"]
        assert stalls  # the halo exchange crosses the 0-1 IPU pair
        assert c1 - c0 == 777 * len(stalls)
        # stalls slow the clock but never touch data
        y0, _, _ = _spmv_result()
        assert np.array_equal(y0, y1)

    def test_link_stall_ignores_uncrossed_pair(self):
        _, c0, _ = _spmv_result()
        inj = FaultInjector(
            FaultPlan.parse("seed=2;link_stall:ipus=5-6,cycles=777,p=1.0"))
        _, c1, _ = _spmv_result(injector=inj)
        assert inj.records == []
        assert c0 == c1

    def test_tile_oom_raises_structured_overflow(self):
        inj = FaultInjector(FaultPlan.parse("seed=1;tile_oom:tile=3,at=2"))
        with pytest.raises(SRAMOverflowError) as exc_info:
            _spmv_result(injector=inj)
        assert exc_info.value.tile_id == 3
        assert "superstep 2" in str(exc_info.value)
        assert inj.records[-1].kind == "tile_oom"

    def test_disabled_kind_is_skipped(self):
        plan = FaultPlan.parse("seed=1;tile_oom:tile=3,at=2")
        inj = FaultInjector(plan, disabled={"tile_oom"})
        _spmv_result(injector=inj)  # completes: the OOM never fires
        assert inj.records == []


class TestBenchHarness:
    def test_ipu_spmv_run_threads_injector(self):
        crs, dims = poisson3d(8)
        kw = dict(grid_dims=dims, num_ipus=2, tiles_per_ipu=16)
        base = ipu_spmv_run(crs, **kw)
        inj = FaultInjector(
            FaultPlan.parse("seed=2;link_stall:ipus=0-1,cycles=500,p=1.0"))
        run = ipu_spmv_run(crs, injector=inj, **kw)
        stalls = [r for r in inj.records if r.kind == "link_stall"]
        assert stalls
        assert run.total_cycles - base.total_cycles == 500 * len(stalls)


class TestGatingAndTelemetry:
    def test_fast_backend_rejects_injector(self):
        crs, dims = poisson3d(8)
        device = IPUDevice(num_ipus=1, tiles_per_ipu=8)
        ctx = TensorContext(device)
        A = DistributedMatrix(ctx, crs, grid_dims=dims)
        x = A.vector(data=np.ones(crs.n))
        y = A.vector()
        A.spmv(x, y)
        inj = FaultInjector(FaultPlan.parse("bitflip:p=0.1"))
        with pytest.raises(ValueError, match="backend sim"):
            ctx.run(backend="fast", injector=inj)

    def test_faults_emit_tracer_instants(self):
        from repro.telemetry import Tracer

        tracer = Tracer()
        inj = FaultInjector(FaultPlan.parse("seed=11;bitflip:p=0.5"))
        _spmv_result(injector=inj, tracer=tracer)
        instants = [e for e in tracer.events
                    if type(e).__name__ == "InstantEvent" and e.name == "fault"]
        assert len(instants) == len(inj.records)
        assert all(e.args["kind"] == "bitflip" for e in instants)
        # fault timestamps sit on the BSP cycle timeline
        assert all(e.ts <= tracer.now() for e in instants)
