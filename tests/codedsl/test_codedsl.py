"""Tests for the CodeDSL IR, codegen, and cost estimator."""

import numpy as np
import pytest

from repro.codedsl import (
    Abs,
    CodeletIR,
    For,
    If,
    Let,
    Max,
    Min,
    Select,
    Sqrt,
    While,
    current_ir,
    estimate_flops,
    generate_source,
)


class TestLeibnizExample:
    """The paper's Fig. 1 kernel: fill x with the Leibniz sequence."""

    def build(self):
        ir = CodeletIR(params=["x"])
        with ir:
            x = ir.array("x")
            For(0, x.size, 1, lambda i: x.set(i, Select(i % 2 == 0, 1.0, -1.0) / (2 * i + 1)))
        return ir

    def test_generated_source_is_python(self):
        src = generate_source(self.build())
        assert src.startswith("def codelet(x):")
        assert "for " in src and "range(" in src

    def test_executes_correctly(self):
        fn = self.build().compile()
        x = np.zeros(10_000, dtype=np.float32)
        fn(x)
        pi = 4 * float(x.sum(dtype=np.float64))
        assert pi == pytest.approx(np.pi, abs=1e-3)

    def test_estimator_scales_with_size(self):
        ir = self.build()
        small = estimate_flops(ir, {"x": np.zeros(10)})
        large = estimate_flops(ir, {"x": np.zeros(1000)})
        assert large > small * 50  # linear in the loop bound


class TestSetItemSugar:
    def test_setitem_emits_store(self):
        ir = CodeletIR(params=["x"])
        with ir:
            x = ir.array("x")
            For(0, x.size, 1, lambda i: x.__setitem__(i, i * 2))
        fn = ir.compile()
        out = np.zeros(4, dtype=np.float32)
        fn(out)
        np.testing.assert_array_equal(out, [0, 2, 4, 6])


class TestControlFlow:
    def test_if_else(self):
        ir = CodeletIR(params=["x"])
        with ir:
            x = ir.array("x")
            If(x[0] > 0, lambda: x.set(1, 100.0), lambda: x.set(1, -100.0))
        fn = ir.compile()
        a = np.array([1.0, 0.0], dtype=np.float32)
        fn(a)
        assert a[1] == 100.0
        b = np.array([-1.0, 0.0], dtype=np.float32)
        fn(b)
        assert b[1] == -100.0

    def test_while_with_mutable_local(self):
        # Sum integers until the accumulator exceeds 100.
        ir = CodeletIR(params=["out"])
        with ir:
            out = ir.array("out")
            acc = Let(0.0)
            n = Let(0.0)
            While(acc < 100, lambda: (acc.assign(acc + n + 1), n.assign(n + 1))[-1] and None)
            out.set(0, acc)
        fn = ir.compile()
        buf = np.zeros(1, dtype=np.float32)
        fn(buf)
        # 1+2+...+14 = 105 is the first partial sum > 100.
        assert buf[0] == 105.0

    def test_nested_loops(self):
        ir = CodeletIR(params=["m"])
        with ir:
            m = ir.array("m")
            For(0, 3, 1, lambda i: For(0, 3, 1, lambda j: m.set(i * 3 + j, i * 10 + j)))
        fn = ir.compile()
        buf = np.zeros(9, dtype=np.float32)
        fn(buf)
        assert buf[4] == 11.0 and buf[8] == 22.0


class TestIntrinsics:
    def test_math_calls(self):
        ir = CodeletIR(params=["x"])
        with ir:
            x = ir.array("x")
            x.set(0, Sqrt(16.0))
            x.set(1, Abs(-3.0))
            x.set(2, Min(2.0, 5.0))
            x.set(3, Max(2.0, 5.0))
        fn = ir.compile()
        buf = np.zeros(4, dtype=np.float32)
        fn(buf)
        np.testing.assert_array_equal(buf, [4, 3, 2, 5])

    def test_scalar_param(self):
        ir = CodeletIR(params=["x", "a"])
        with ir:
            x, a = ir.array("x"), ir.scalar("a")
            For(0, x.size, 1, lambda i: x.set(i, x[i] * a))
        fn = ir.compile()
        buf = np.ones(3, dtype=np.float32)
        fn(buf, 2.5)
        np.testing.assert_array_equal(buf, [2.5, 2.5, 2.5])


class TestErrorHandling:
    def test_statement_outside_ir_rejected(self):
        with pytest.raises(RuntimeError):
            For(0, 10, 1, lambda i: None)

    def test_current_ir_inside_context(self):
        ir = CodeletIR(params=[])
        with ir:
            assert current_ir() is ir
        with pytest.raises(RuntimeError):
            current_ir()

    def test_value_has_no_truthiness(self):
        ir = CodeletIR(params=["x"])
        with ir:
            x = ir.array("x")
            with pytest.raises(TypeError):
                bool(x[0] > 1)

    def test_unknown_param_rejected(self):
        ir = CodeletIR(params=["x"])
        with ir:
            with pytest.raises(KeyError):
                ir.array("y")

    def test_foreign_object_rejected(self):
        ir = CodeletIR(params=["x"])
        with ir:
            x = ir.array("x")
            with pytest.raises(TypeError):
                x.set(0, object())


class TestEstimator:
    def test_if_charges_worst_branch(self):
        ir = CodeletIR(params=["x"])
        with ir:
            x = ir.array("x")
            # then: 1 op; else: 3 ops.
            If(x[0] > 0, lambda: x.set(0, x[0] + 1), lambda: x.set(0, x[0] * 2 + x[1] - 1))
        flops = estimate_flops(ir, {"x": np.zeros(4)})
        assert flops == 1 + 3  # cond + worst branch

    def test_while_charges_one_iteration(self):
        ir = CodeletIR(params=["x"])
        with ir:
            ir.array("x")
            t = Let(0.0)
            While(t < 10, lambda: t.assign(t + 1))
        # cond(1) + body(1); Let's constant init is free.
        assert estimate_flops(ir, {"x": np.zeros(1)}) == 2

    def test_scalar_binding_feeds_bounds(self):
        ir = CodeletIR(params=["x", "n"])
        with ir:
            x, n = ir.array("x"), ir.scalar("n")
            For(0, n, 1, lambda i: x.set(i, 1.0))
        assert estimate_flops(ir, {"x": np.zeros(100), "n": 7}) == 7  # 7 induction updates
