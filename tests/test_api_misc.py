"""Coverage for the top-level API surface, bench harness, and softfloat."""

import numpy as np
import pytest

from repro.bench import print_series, print_table, save_result
from repro.dw import softfloat
from repro.solvers import solve
from repro.solvers.api import SolveResult
from repro.sparse import poisson2d


class TestSolveResult:
    @pytest.fixture(scope="class")
    def result(self):
        crs, dims = poisson2d(8)
        b = np.random.default_rng(0).standard_normal(crs.n)
        return solve(crs, b, {"solver": "bicgstab", "tol": 1e-5},
                     grid_dims=dims, tiles_per_ipu=4)

    def test_fields_populated(self, result):
        assert isinstance(result, SolveResult)
        assert result.x.shape == (64,)
        assert result.cycles > 0
        assert result.seconds == pytest.approx(result.cycles / 1.33e9)
        assert 0 < result.relative_residual < 1e-4
        assert result.iterations == result.stats.total_iterations
        assert sum(result.profile.values()) == pytest.approx(1.0)

    def test_engine_and_solver_exposed(self, result):
        assert result.engine is not None
        assert result.solver.name == "bicgstab"

    def test_custom_device(self):
        from repro.machine import IPUDevice

        crs, dims = poisson2d(6)
        dev = IPUDevice(num_ipus=1, tiles_per_ipu=9)
        res = solve(crs, np.ones(crs.n), {"solver": "jacobi", "sweeps": 5},
                    grid_dims=dims, device=dev)
        assert res.engine.device is dev


class TestResidualDtype:
    def test_float32_rhs_reports_f64_relative_residual(self):
        # Regression: ``np.linalg.norm(b)`` in the caller's float32 used to
        # normalize an f64 residual — the reported relative residual must be
        # identical whichever dtype the rhs arrives in.
        crs, dims = poisson2d(8)
        b64 = np.random.default_rng(1).standard_normal(crs.n)
        b32 = b64.astype(np.float32)
        cfg = {"solver": "cg", "tol": 1e-6}
        r32 = solve(crs, b32, cfg, grid_dims=dims, tiles_per_ipu=4)
        r64 = solve(crs, b32.astype(np.float64), cfg, grid_dims=dims,
                    tiles_per_ipu=4)
        assert r32.relative_residual == r64.relative_residual
        # And it really is the f64 quantity: recompute on the host.
        bref = b32.astype(np.float64)
        expect = np.linalg.norm(crs.spmv(r32.x) - bref) / np.linalg.norm(bref)
        assert r32.relative_residual == expect


class TestBenchHarness:
    def test_print_table_returns_text(self, capsys):
        text = print_table("T", ["a", "bb"], [[1, 22], [333, 4]])
        out = capsys.readouterr().out
        assert "T" in text and "333" in text
        assert text in out

    def test_print_series(self):
        text = print_series("S", "x", ["y"], [[1, 2.0]])
        assert "x" in text and "y" in text

    def test_save_result_roundtrip(self):
        path = save_result("selftest_artifact", "hello world")
        assert path.read_text() == "hello world\n"
        path.unlink()

    def test_empty_table(self):
        text = print_table("empty", ["col"], [])
        assert "col" in text


class TestSoftFloat:
    def test_conversion_roundtrip(self):
        v = np.array([np.pi, 1 + 1e-12])
        wide = softfloat.to_emulated(v.astype(np.float32))
        assert wide.dtype == np.float64
        narrow = softfloat.from_emulated(v)
        assert narrow.dtype == np.float32

    def test_cycle_constants_table1(self):
        assert softfloat.CYCLES == {"add": 1080, "mul": 1260, "div": 2520}
        assert softfloat.DIGITS == 16.0


class TestBlockwiseOption:
    def test_solve_with_naive_halo(self):
        # The naive exchange plan must give identical numerics, just slower.
        crs, dims = poisson2d(8)
        b = np.random.default_rng(4).standard_normal(crs.n)
        cfg = {"solver": "bicgstab", "tol": 1e-5}
        block = solve(crs, b, cfg, grid_dims=dims, tiles_per_ipu=4)
        naive = solve(crs, b, cfg, grid_dims=dims, tiles_per_ipu=4,
                      blockwise_halo=False)
        np.testing.assert_array_equal(block.x, naive.x)
        assert naive.cycles > block.cycles
